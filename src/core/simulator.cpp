#include "core/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/rib.h"
#include "routing/rib_store.h"
#include "routing/tree_delta.h"

namespace sbgp::core {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Bit-level double equality: the differential checker must distinguish
/// +0.0 from -0.0 and treat identical NaNs as equal (== does neither).
[[nodiscard]] bool same_bits(double a, double b) {
  std::uint64_t x = 0, y = 0;
  static_assert(sizeof(x) == sizeof(a));
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}
}  // namespace

const char* to_string(PricingModel p) {
  switch (p) {
    case PricingModel::LinearVolume: return "linear";
    case PricingModel::ConcaveVolume: return "concave";
    case PricingModel::TieredCapacity: return "tiered";
  }
  return "?";
}

double apply_pricing(PricingModel pricing, double tier_size, double volume) {
  switch (pricing) {
    case PricingModel::LinearVolume:
      return volume;
    case PricingModel::ConcaveVolume:
      return std::sqrt(std::max(0.0, volume));
    case PricingModel::TieredCapacity:
      return tier_size > 0 ? std::ceil(volume / tier_size) : volume;
  }
  return volume;
}

std::vector<double> randomized_thetas(const AsGraph& graph, double theta,
                                      double spread, std::uint64_t seed) {
  std::vector<double> out(graph.num_nodes(), theta);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(theta * (1.0 - spread),
                                           theta * (1.0 + spread));
  for (AsId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.is_isp(n)) out[n] = u(rng);
  }
  return out;
}

const char* to_string(UtilityModel m) {
  switch (m) {
    case UtilityModel::Outgoing: return "outgoing";
    case UtilityModel::Incoming: return "incoming";
  }
  return "?";
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::Stable: return "stable";
    case Outcome::Oscillating: return "oscillating";
    case Outcome::RoundCapReached: return "round-cap";
    case Outcome::Aborted: return "aborted";
  }
  return "?";
}

rt::UtilityAccumulator compute_utilities(
    const AsGraph& graph, const std::vector<std::uint8_t>& secure,
    const SimConfig& cfg, par::ThreadPool& pool,
    const rt::LinkSet* enabled_links) {
  const std::size_t n = graph.num_nodes();
  rt::UtilityAccumulator total(n);
  if (n == 0) return total;
  // One word-packed secure-state snapshot, shared read-only by every worker.
  rt::SecurityView view;
  view.graph = &graph;
  view.base = secure.data();
  view.stub_breaks_ties = cfg.stub_breaks_ties;
  view.enabled_links = enabled_links;
  rt::Arena mask_arena;
  rt::SecureMask mask;
  mask.build(view, mask_arena);
  // Fixed 64-way decomposition merged in chunk order: the result is
  // bitwise invariant under the worker-thread count (floating-point
  // addition is not associative, so a merge order that depended on task
  // completion order would not be).
  const std::size_t chunks = std::min<std::size_t>(n, 64);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<rt::UtilityAccumulator> partial(chunks, rt::UtilityAccumulator(n));
  par::parallel_for_dynamic(pool, 0, chunks, [&](std::size_t c) {
    rt::RibComputer rc(graph);
    rt::TreeComputer tc(graph);
    rt::DestRib rib;
    rt::RoutingTree tree;
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t d = lo; d < hi; ++d) {
      rc.compute(static_cast<AsId>(d), rib);
      tc.compute(rib, mask, cfg.tiebreak, tree);
      partial[c].add_tree(graph, rib, tree);
    }
  });
  for (const auto& p : partial) total.merge(p);
  return total;
}

struct DeploymentSimulator::RoundOutput {
  std::vector<double> util_out, util_in;
  std::vector<double> delta_on_out, delta_on_in;
  std::vector<double> delta_off_out, delta_off_in;
  std::vector<std::uint8_t> eval_on, eval_off;

  explicit RoundOutput(std::size_t n)
      : util_out(n, 0.0), util_in(n, 0.0),
        delta_on_out(n, 0.0), delta_on_in(n, 0.0),
        delta_off_out(n, 0.0), delta_off_in(n, 0.0),
        eval_on(n, 0), eval_off(n, 0) {}

  void reset() {
    auto zero = [](std::vector<double>& v) { std::fill(v.begin(), v.end(), 0.0); };
    zero(util_out); zero(util_in);
    zero(delta_on_out); zero(delta_on_in);
    zero(delta_off_out); zero(delta_off_in);
    std::fill(eval_on.begin(), eval_on.end(), 0);
    std::fill(eval_off.begin(), eval_off.end(), 0);
  }
};

namespace {

/// Everything one destination contributes to a round, in sparse form. The
/// round aggregate is the sum of all N bundles folded in destination order
/// (see RoundOutput aggregation in evaluate_round) — a fixed order, so the
/// result is bitwise independent of both the worker-thread count and of
/// which subset of destinations was actually recomputed. That is the whole
/// trick behind the incremental engine's exactness: a clean destination's
/// cached bundle is byte-identical to what a recompute would produce, and
/// the fold order never changes.
struct DestBundle {
  struct UtilEntry {
    AsId node;
    double value;
  };
  struct ProjEntry {
    AsId cand;
    double d_out, d_in;
    /// Range into `proj_fp`: the secure-candidate nodes this entry's
    /// flipped tree has BEYOND the base tree's set P. The entry's delta is
    /// stale iff a bit changed inside P (covered by `fp_tree`), inside
    /// this range, or the candidate's own bit changed.
    std::uint32_t fp_begin = 0, fp_end = 0;
  };
  /// Base-tree utility contributions (Eqs. 1/2), in rib.order traversal
  /// order; zero-valued entries are dropped (adding +0.0 to a non-negative
  /// accumulator is a bitwise no-op).
  std::vector<UtilEntry> util_out, util_in;
  /// Eq. 3 projection deltas for every evaluated candidate, in
  /// affected-list order. Presence of a *relevant* entry == the candidate
  /// was evaluated for this destination (sets eval_on/eval_off). Relevance
  /// is judged against the current flags at fold time: a proj_on entry for
  /// a now-secure candidate (it flipped on after this bundle was cached)
  /// is inert — with allow_turn_off off it can never become a candidate
  /// again, so the stale entry need not dirty the destination.
  std::vector<ProjEntry> proj_on, proj_off;
  /// Base-tree sensitivity set (see append_dirty_footprint): the tree,
  /// utility entries and affected-candidate lists provably depend on no
  /// secure bit outside it. Projection deltas additionally depend on the
  /// per-entry `proj_fp` ranges.
  std::vector<AsId> fp_tree;
  /// Concatenated per-projection footprint deltas (flipped-tree secure
  /// candidates not already in P), indexed by ProjEntry::fp_begin/fp_end.
  std::vector<AsId> proj_fp;
  /// Fingerprint of the cached base routing tree, for the differential
  /// checker (the tree itself is not retained).
  std::uint64_t tree_hash = 0;
  /// |P| — number of nodes with a secure tiebreak candidate in the base
  /// tree. A function of the cached tree, so valid as long as the bundle:
  /// the partial-update path skips the O(N) Rule-1 scan when it is zero
  /// (the common insecure-stub-destination case).
  std::uint32_t p_count = 0;

  void clear() {
    util_out.clear();
    util_in.clear();
    proj_on.clear();
    proj_off.clear();
    fp_tree.clear();
    proj_fp.clear();
    tree_hash = 0;
    p_count = 0;
  }
};

/// Compares a cached bundle against a freshly recomputed one; returns an
/// empty string when identical, else a description of the first mismatch.
/// Projection entries are compared after the same relevance filter the
/// round fold applies (`flags`): a cached proj_on entry whose candidate
/// has since flipped on is inert and has no counterpart in the fresh
/// bundle. Footprint bookkeeping is deliberately NOT compared — a wrong
/// footprint shows up as a stale *value* on a destination the dirty scan
/// failed to flag, which is exactly what this comparison catches.
[[nodiscard]] std::string bundle_divergence(const DestBundle& cached,
                                            const DestBundle& fresh,
                                            const std::uint8_t* flags) {
  if (cached.tree_hash != fresh.tree_hash) {
    return "routing-tree fingerprint mismatch";
  }
  const auto cmp_util = [](const std::vector<DestBundle::UtilEntry>& a,
                           const std::vector<DestBundle::UtilEntry>& b,
                           const char* what) -> std::string {
    if (a.size() != b.size()) {
      return std::string(what) + " entry count " + std::to_string(a.size()) +
             " != " + std::to_string(b.size());
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].node != b[i].node || !same_bits(a[i].value, b[i].value)) {
        return std::string(what) + " mismatch at entry " + std::to_string(i) +
               " (node " + std::to_string(b[i].node) + ")";
      }
    }
    return {};
  };
  const auto cmp_proj = [flags](const std::vector<DestBundle::ProjEntry>& a,
                                const std::vector<DestBundle::ProjEntry>& b,
                                bool on, const char* what) -> std::string {
    const auto relevant = [flags, on](const DestBundle::ProjEntry& e) {
      return on ? flags[e.cand] == 0 : flags[e.cand] != 0;
    };
    std::size_t j = 0;
    for (const auto& e : a) {
      if (!relevant(e)) continue;
      while (j < b.size() && !relevant(b[j])) ++j;
      if (j == b.size()) {
        return std::string(what) + " extra cached candidate " +
               std::to_string(e.cand);
      }
      if (e.cand != b[j].cand || !same_bits(e.d_out, b[j].d_out) ||
          !same_bits(e.d_in, b[j].d_in)) {
        return std::string(what) + " mismatch (candidate " +
               std::to_string(b[j].cand) + ")";
      }
      ++j;
    }
    while (j < b.size() && !relevant(b[j])) ++j;
    if (j != b.size()) {
      return std::string(what) + " missing cached candidate " +
             std::to_string(b[j].cand);
    }
    return {};
  };
  std::string err;
  if (!(err = cmp_util(cached.util_out, fresh.util_out, "util_out")).empty()) return err;
  if (!(err = cmp_util(cached.util_in, fresh.util_in, "util_in")).empty()) return err;
  if (!(err = cmp_proj(cached.proj_on, fresh.proj_on, true, "proj_on")).empty()) return err;
  if (!(err = cmp_proj(cached.proj_off, fresh.proj_off, false, "proj_off")).empty()) return err;
  return {};
}

/// Per-worker reusable scratch for one destination evaluation.
struct WorkerScratch {
  rt::RibComputer rc;
  rt::TreeComputer tc;
  rt::DestRib rib;
  rt::RoutingTree tree, flipped;
  std::vector<AsId> affected_on, affected_off;
  std::vector<std::uint32_t> mark_on, mark_off;
  std::uint32_t epoch = 0;
  DestBundle check_tmp;  ///< differential mode: fresh bundle of a clean dest
  DestBundle part_tmp;   ///< partial update: rebuilt projection lists
  /// Arena-backed word-packed mask for the currently projected flip: a
  /// words-memcpy of the round's base mask plus an O(degree) patch per
  /// candidate. The arena allocates on the first projection and never again.
  rt::Arena arena;
  rt::SecureMask proj_mask;
  /// Candidate -> cached-entry index, epoch-marked (partial update).
  std::vector<std::uint32_t> slot, slot_epoch;
  std::uint32_t slot_epoch_v = 0;
  /// Frontier-delta projection kernel (SimConfig::projection_delta): bound
  /// lazily to the current destination's (rib, base tree, base mask) on its
  /// SECOND projection — a destination with a single candidate never pays
  /// the bind, so the kernel can only win, never regress, per destination.
  rt::TreeDelta delta;
  bool delta_bound = false;
  std::uint32_t delta_seen = 0;  ///< projections issued for the current dest
  /// Per-round projection accounting, plain fields summed once per round by
  /// evaluate_round (no hot-path atomics).
  std::size_t proj_delta = 0, proj_full = 0, proj_touched = 0;

  explicit WorkerScratch(const AsGraph& g)
      : rc(g),
        tc(g),
        mark_on(g.num_nodes(), 0),
        mark_off(g.num_nodes(), 0),
        slot(g.num_nodes(), 0),
        slot_epoch(g.num_nodes(), 0),
        delta(g) {}
};

}  // namespace

/// Bundle cache + scratch, owned per simulator (pimpl so the header stays
/// free of engine internals).
struct DeploymentSimulator::Cache {
  std::vector<DestBundle> bundles;       ///< one per destination
  std::vector<WorkerScratch> scratch;    ///< one per pool worker
  std::vector<AsId> changed;             ///< nodes whose bit changed last round
  std::vector<std::uint8_t> changed_mask;  ///< dense view of `changed`
  std::vector<std::size_t> work;         ///< dirty destinations this round
  std::vector<std::uint8_t> dirty_mask;  ///< dense view of `work` (check mode)
  /// Destinations force-marked dirty between rounds by
  /// apply_topology_delta (their dirty_mask bit is pre-set; the next
  /// evaluation's scan picks them up first). Tracked separately so the
  /// end-of-round mask clearing can reset bits the `changed`-indexed sweep
  /// would miss.
  std::vector<std::size_t> force_dirty;
  /// Destinations in `work` taking the partial-update path (base tree
  /// provably unchanged; only stale projection entries refreshed).
  std::vector<std::uint8_t> partial_mask;
  /// Cross-round caches, allocated only when the O(N^2 + N*E) upper bound
  /// fits SimConfig::incremental_cache_budget (see `big_cache`): the
  /// state-independent per-destination RIBs (valid for the lifetime of the
  /// simulator once built — slab-backed, tiebreaks pre-sorted, see
  /// rt::RibStore) and the base routing tree backing each cached bundle
  /// (valid exactly as long as the bundle itself).
  std::unique_ptr<rt::RibStore> rib_store;
  std::vector<rt::RoutingTree> trees;
  bool big_cache = false;
  /// The round's base secure-state, snapshotted into word-packed bits once
  /// per evaluate_round and shared read-only by every worker; projections
  /// memcpy+patch it (SecureMask::assign_flipped). The arena never resets —
  /// the mask shape is fixed, so it allocates exactly once.
  rt::Arena mask_arena;
  rt::SecureMask base_mask;
  /// SBGP_DIRTY_DEBUG per-round accounting (inert otherwise).
  std::atomic<long long> dbg_full_ns{0}, dbg_part_ns{0};
  std::atomic<std::size_t> dbg_full_n{0}, dbg_part_n{0};
  /// Do `bundles` describe the state entering the next round? False until
  /// the first evaluated round of a run() and whenever the engine cannot
  /// carry bundles forward.
  bool valid = false;

  Cache(const AsGraph& g, std::size_t workers, const SimConfig& cfg)
      : bundles(g.num_nodes()),
        changed_mask(g.num_nodes(), 0),
        dirty_mask(g.num_nodes(), 0),
        partial_mask(g.num_nodes(), 0) {
    scratch.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) scratch.emplace_back(g);
    if (cfg.incremental) {
      const std::size_t n = g.num_nodes();
      std::size_t adj = 0;  // total adjacency = 2|E|, bounds the tiebreak sets
      for (AsId i = 0; i < n; ++i) {
        adj += g.customers(i).size() + g.peers(i).size() + g.providers(i).size();
      }
      // Per destination: RIB slab columns ~ 11N + 4*adj bytes (see
      // RibStore::bytes_reserved), tree ~ 14N bytes.
      const std::size_t estimate = n * (25 * n + 4 * adj);
      big_cache = estimate <= cfg.incremental_cache_budget;
      if (big_cache) {
        // The store's constructor allocates (and zero-touches) the fixed
        // column slabs up front, so no evaluated round ever pays first-touch
        // page faults for a RIB. Pre-size the cached trees likewise.
        rib_store = std::make_unique<rt::RibStore>(g);
        trees.resize(n);
        for (AsId d = 0; d < n; ++d) {
          auto& t = trees[d];
          t.next_hop.assign(n, topo::kNoAs);
          t.path_secure.assign(n, 0);
          t.subtree_weight.assign(n, 0.0);
          t.has_secure_candidate.assign(n, 0);
        }
      }
    }
  }
};

DeploymentSimulator::DeploymentSimulator(const AsGraph& graph, SimConfig cfg)
    : graph_(graph),
      cfg_(cfg),
      pool_(cfg.threads),
      cache_(std::make_unique<Cache>(graph, pool_.size(), cfg_)) {
  assert(graph.finalized());
}

DeploymentSimulator::~DeploymentSimulator() = default;

namespace {

/// The base-state security view shared by every evaluation at one state.
[[nodiscard]] rt::SecurityView make_base_view(const AsGraph& graph,
                                              const SimConfig& cfg,
                                              const std::uint8_t* flags) {
  rt::SecurityView v;
  v.graph = &graph;
  v.base = flags;
  v.stub_breaks_ties = cfg.stub_breaks_ties;
  v.frozen = cfg.frozen != nullptr ? cfg.frozen->data() : nullptr;
  return v;
}

/// Rebuilds the C.4 affected-candidate lists — which ISPs' flips can matter
/// for destination `d`? — into s.affected_on / s.affected_off, returning
/// |P|. A function of (rib, tree, flags) only, and the lists depend on no
/// secure bit outside the bundle's fp_tree: that is what lets the
/// partial-update path rebuild them against fresh flags on top of a cached
/// RIB and tree.
///
/// `fp_tree` (optional): collect the base-tree sensitivity footprint (the
/// contract of rt::append_dirty_footprint — same content, same order) in
/// the same pass over P instead of a second O(N) scan.
///
/// `skip_rule1`: the caller knows P is empty for the cached tree (see
/// DestBundle::p_count), so the Rule-1 scan over rib.order is a no-op and
/// only Rule 2 can contribute. Only valid when the tree is unchanged.
std::uint32_t build_affected(const AsGraph& graph, const SimConfig& cfg,
                             const std::uint8_t* flags, AsId d,
                             const rt::RibView& rib,
                             const rt::RoutingTree& tree, WorkerScratch& s,
                             std::vector<AsId>* fp_tree = nullptr,
                             bool skip_rule1 = false) {
  const std::size_t n = graph.num_nodes();
  const bool incoming_off =
      cfg.model == UtilityModel::Incoming && cfg.allow_turn_off;
  const bool outgoing = cfg.model == UtilityModel::Outgoing;
  const auto secure = [flags](AsId x) { return flags[x] != 0; };
  ++s.epoch;
  s.affected_on.clear();
  s.affected_off.clear();
  if (!cfg.use_projection_pruning) {
    // Exhaustive mode: project every ISP against every destination.
    for (AsId x = 0; x < n; ++x) {
      if (!graph.is_isp(x)) continue;
      if (secure(x)) {
        if (incoming_off) s.affected_off.push_back(x);
      } else {
        s.affected_on.push_back(x);
      }
    }
    return 0;
  }
  auto add_on = [&](AsId x) {
    // In the outgoing model an ISP only earns utility for destinations
    // it reaches over a customer edge (Eq. 1), and the route class is
    // state-independent (Obs. C.1) — every other (ISP, dest) pair has
    // identically-zero contribution in both states and can be skipped.
    if (outgoing && rib.cls[x] != rt::RouteClass::Customer) return;
    if (s.mark_on[x] != s.epoch) {
      s.mark_on[x] = s.epoch;
      s.affected_on.push_back(x);
    }
  };
  auto add_off = [&](AsId x) {
    if (s.mark_off[x] != s.epoch) {
      s.mark_off[x] = s.epoch;
      s.affected_off.push_back(x);
    }
  };

  // Rule 1: any node with a secure tiebreak candidate ("the set P").
  // - an insecure ISP there can start offering a secure path;
  // - a secure ISP there can stop doing so (incoming model);
  // - an insecure stub there changes its route choice when a provider
  //   simplex-secures it (if stubs break ties), moving traffic between
  //   its providers.
  // When `fp_tree` is requested, the footprint rides along in the same
  // pass: every P member, the ISP providers of its stubs (when stubs break
  // ties — they gate the stub tie-break rule), and below the destination's
  // own Rule-2 gates.
  std::uint32_t p_count = 0;
  if (!skip_rule1) {
    for (const AsId i : rib.order) {
      if (tree.has_secure_candidate[i] == 0) continue;
      ++p_count;
      if (fp_tree != nullptr) fp_tree->push_back(i);
      const bool stub_tb = graph.is_stub(i) && cfg.stub_breaks_ties;
      if (secure(i)) {
        if (incoming_off && graph.is_isp(i)) add_off(i);
      } else if (graph.is_isp(i)) {
        add_on(i);
      } else if (stub_tb) {
        for (const AsId p : graph.providers(i)) {
          if (graph.is_isp(p) && !secure(p)) add_on(p);
        }
      }
      if (stub_tb && fp_tree != nullptr) {
        for (const AsId p : graph.providers(i)) {
          if (graph.is_isp(p)) fp_tree->push_back(p);
        }
      }
    }
  }
  if (fp_tree != nullptr) {
    fp_tree->push_back(d);
    if (graph.is_stub(d)) {
      for (const AsId p : graph.providers(d)) {
        if (graph.is_isp(p)) fp_tree->push_back(p);
      }
    }
  }
  // Rule 2: flips that change the *destination's* security. A
  // destination that is insecure in both states admits no secure path
  // at all (optimisation 1 of C.4), so only these flips matter for an
  // insecure d.
  if (!secure(d)) {
    if (graph.is_stub(d)) {
      for (const AsId p : graph.providers(d)) {
        if (graph.is_isp(p) && !secure(p)) add_on(p);
      }
    } else if (graph.is_isp(d)) {
      add_on(d);
    }
  } else if (incoming_off && graph.is_isp(d)) {
    add_off(d);
  }
  return p_count;
}

/// Evaluates one hypothetical flip: computes the flipped routing tree and
/// appends the candidate's Eq. 3 projection delta — together with its
/// footprint slice, the flipped tree's secure-candidate nodes beyond the
/// base set P — to `out.proj_on` / `out.proj_off`.
void project_candidate(const AsGraph& graph, const SimConfig& cfg,
                       const rt::SecurityView& base_view,
                       const rt::SecureMask& base_mask, const rt::RibView& rib,
                       const rt::RoutingTree& tree, AsId cand, bool on,
                       WorkerScratch& s, DestBundle& out) {
  // Word-copy the round's base mask and patch the candidate (plus its
  // simplex-secured stubs when flipping on): O(N/64) + O(degree) instead of
  // re-evaluating the branchy security predicate for every node.
  s.proj_mask.assign_flipped(base_mask, base_view, cand, on, s.arena);
  const bool keep_fp = cfg.incremental && cfg.use_projection_pruning;
  const auto before = rt::node_contribution(graph, rib, tree, cand);
  auto& entries = on ? out.proj_on : out.proj_off;

  // Frontier-delta fast path: re-resolve only the winners the flip can
  // perturb and read the flipped tree through the overlay. The first
  // projection of a destination takes the full path (binding the kernel is
  // only worth amortizing over 2+ candidates); threshold bailouts and
  // kernel-ineligible RIBs (unsorted tiebreaks — notably the fresh unsorted
  // bundles check_incremental rebuilds, which thereby stay an independent
  // cross-validation of this very path — and hijack RIBs) fall through to
  // the full rebuild below. Identical output either way, bit for bit.
  if (cfg.projection_delta && rib.tb_sorted && rib.impostor == topo::kNoAs) {
    if (!s.delta_bound && s.delta_seen > 0) {
      s.delta_bound = s.delta.bind(rib, tree, base_mask);
    }
    ++s.delta_seen;
    if (s.delta_bound && s.delta.apply(s.proj_mask)) {
      ++s.proj_delta;
      s.proj_touched += s.delta.stats().touched();
      const auto after = s.delta.contribution(cand);
      const auto fb = static_cast<std::uint32_t>(out.proj_fp.size());
      if (keep_fp) {
        // hsc_gained is exactly the slice the full path's rib.order scan
        // collects: nodes with a secure candidate beyond the base set P.
        for (const AsId i : s.delta.hsc_gained()) out.proj_fp.push_back(i);
      }
      entries.push_back({cand, after.outgoing - before.outgoing,
                         after.incoming - before.incoming, fb,
                         static_cast<std::uint32_t>(out.proj_fp.size())});
      return;
    }
  } else {
    ++s.delta_seen;
  }

  ++s.proj_full;
  s.tc.compute(rib, s.proj_mask, cfg.tiebreak, s.flipped);
  const auto after = rt::node_contribution(graph, rib, s.flipped, cand);
  const auto fb = static_cast<std::uint32_t>(out.proj_fp.size());
  if (keep_fp) {
    // Footprint slice — only needed when bundles are carried across rounds.
    for (const AsId i : rib.order) {
      if (s.flipped.has_secure_candidate[i] != 0 &&
          tree.has_secure_candidate[i] == 0) {
        out.proj_fp.push_back(i);
      }
    }
  }
  const auto fe = static_cast<std::uint32_t>(out.proj_fp.size());
  entries.push_back({cand, after.outgoing - before.outgoing,
                     after.incoming - before.incoming, fb, fe});
}

/// Evaluates destination `d` under the base state into `out`: base tree
/// utilities, the C.4 affected-candidate sets, every projection delta, the
/// state footprint, and the tree fingerprint. Pure function of (graph, cfg,
/// flags, d); `s` is reusable scratch. The RIB is supplied by the caller —
/// a RibStore view when the cross-round cache is enabled (RIBs are
/// state-independent, Obs. C.1), else freshly computed per-worker scratch.
/// `base_view` and `base_mask` must describe the same flags (the mask is
/// the view's word-packed snapshot).
void compute_bundle(const AsGraph& graph, const SimConfig& cfg,
                    const rt::SecurityView& base_view,
                    const rt::SecureMask& base_mask, AsId d, WorkerScratch& s,
                    const rt::RibView& rib, rt::RoutingTree& tree,
                    DestBundle& out) {
  out.clear();
  // New destination, new base tree: any delta binding is for the old one.
  s.delta_bound = false;
  s.delta_seen = 0;
  const std::uint8_t* flags = base_view.base;
  s.tc.compute(rib, base_mask, cfg.tiebreak, tree);

  // Base utilities for every node, both models, in one pass (sparse form
  // of UtilityAccumulator::add_tree).
  for (const AsId i : rib.order) {
    if (i == d) continue;
    if (rib.cls[i] == rt::RouteClass::Customer) {
      const double v = tree.subtree_weight[i] - graph.weight(i);
      if (v != 0.0) out.util_out.push_back({i, v});
    } else if (rib.cls[i] == rt::RouteClass::Provider) {
      const double v = tree.subtree_weight[i];
      if (v != 0.0) out.util_in.push_back({tree.next_hop[i], v});
    }
  }

  // ---- Appendix C.4 pruning: which ISPs' flips can matter for d? ----
  // The base-tree sensitivity footprint (the append_dirty_footprint
  // contract) is collected in the same pass over P: the tree — hence the
  // utility entries and the affected lists — depends on no secure bit
  // outside it. Projection deltas additionally depend on the nodes that
  // only gain a secure candidate under the hypothetical flip; those are
  // recorded per entry as compact deltas against P, so a candidate's
  // footprint can be ignored once its entry is inert (see the dirty
  // scan). All of this bookkeeping only matters when bundles are carried
  // across rounds — the memoryless full engine skips it, so the bench
  // comparison charges the incremental engine, not the baseline, for its
  // own metadata. Duplicates are left in: the dirty scan only tests
  // membership against changed_mask, and deduplicating every secure
  // destination's ~|P|-sized footprint would cost more than the scan ever
  // saves.
  const bool keep_fp = cfg.incremental && cfg.use_projection_pruning;
  out.p_count = build_affected(graph, cfg, flags, d, rib, tree, s,
                               keep_fp ? &out.fp_tree : nullptr);

  // ---- Projections: recompute the tree under each candidate flip. ----
  for (const AsId cand : s.affected_on) {
    project_candidate(graph, cfg, base_view, base_mask, rib, tree, cand, true,
                      s, out);
  }
  for (const AsId cand : s.affected_off) {
    project_candidate(graph, cfg, base_view, base_mask, rib, tree, cand, false,
                      s, out);
  }

  // The fingerprint exists purely for the differential checker; neither
  // engine consumes it outside check_incremental runs.
  if (cfg.check_incremental) out.tree_hash = rt::tree_fingerprint(rib, tree);
}

/// Refreshes only the stale projection entries of a destination whose base
/// routing tree is provably unchanged (no changed node in its fp_tree):
/// reuses the cached RIB and tree, rebuilds the affected-candidate lists
/// against the current flags, keeps every entry whose candidate bit and
/// footprint slice are untouched, and recomputes the rest. Utility entries,
/// fp_tree and the tree fingerprint are functions of the unchanged rib and
/// tree and stay as cached. The result is identical, entry for entry, to a
/// full recompute — dropped candidates (e.g. a provider that flipped on)
/// simply have no counterpart in the fresh affected lists, and new
/// candidates miss the cached index and are computed from scratch.
/// check_incremental verifies this equivalence destination by destination.
void update_bundle_partial(const AsGraph& graph, const SimConfig& cfg,
                           const rt::SecurityView& base_view,
                           const rt::SecureMask& base_mask,
                           const std::uint8_t* changed_mask, AsId d,
                           WorkerScratch& s, const rt::RibView& rib,
                           const rt::RoutingTree& tree, DestBundle& out) {
  assert(out.tree_hash == 0 ||
         rt::tree_fingerprint(rib, tree) == out.tree_hash);
  // Same invalidation as compute_bundle: the kernel must rebind against
  // THIS destination's tree (and this round's base mask) before any apply.
  s.delta_bound = false;
  s.delta_seen = 0;
  const std::uint8_t* flags = base_view.base;
  // P is a function of the cached (unchanged) tree: when the bundle
  // recorded it empty, Rule 1 cannot contribute and the O(N) scan is
  // skipped — the common case here, since most partially-updated
  // destinations are insecure stubs whose base tree has no secure path.
  build_affected(graph, cfg, flags, d, rib, tree, s, /*fp_tree=*/nullptr,
                 /*skip_rule1=*/out.p_count == 0);

  DestBundle& nb = s.part_tmp;
  nb.proj_on.clear();
  nb.proj_off.clear();
  nb.proj_fp.clear();

  const auto refresh = [&](const std::vector<AsId>& affected,
                           const std::vector<DestBundle::ProjEntry>& cached,
                           bool on) {
    // Index the cached entries by candidate (epoch-marked slots).
    ++s.slot_epoch_v;
    for (std::uint32_t i = 0; i < cached.size(); ++i) {
      s.slot[cached[i].cand] = i;
      s.slot_epoch[cached[i].cand] = s.slot_epoch_v;
    }
    for (const AsId cand : affected) {
      const DestBundle::ProjEntry* e =
          s.slot_epoch[cand] == s.slot_epoch_v ? &cached[s.slot[cand]] : nullptr;
      bool stale = e == nullptr || changed_mask[cand] != 0;
      for (std::uint32_t k = e != nullptr ? e->fp_begin : 0;
           !stale && k < e->fp_end; ++k) {
        stale = changed_mask[out.proj_fp[k]] != 0;
      }
      if (stale) {
        project_candidate(graph, cfg, base_view, base_mask, rib, tree, cand,
                          on, s, nb);
        continue;
      }
      const auto fb = static_cast<std::uint32_t>(nb.proj_fp.size());
      nb.proj_fp.insert(nb.proj_fp.end(), out.proj_fp.begin() + e->fp_begin,
                        out.proj_fp.begin() + e->fp_end);
      auto& entries = on ? nb.proj_on : nb.proj_off;
      entries.push_back({cand, e->d_out, e->d_in, fb,
                         static_cast<std::uint32_t>(nb.proj_fp.size())});
    }
  };
  refresh(s.affected_on, out.proj_on, true);
  refresh(s.affected_off, out.proj_off, false);
  out.proj_on.swap(nb.proj_on);
  out.proj_off.swap(nb.proj_off);
  out.proj_fp.swap(nb.proj_fp);
}

}  // namespace

std::size_t DeploymentSimulator::evaluate_round(const DeploymentState& state,
                                                RoundOutput& out,
                                                std::size_t round,
                                                RoundStats* stats) {
  const std::size_t n = graph_.num_nodes();
  Cache& c = *cache_;
  // Phase timestamps are taken unconditionally (4 clock reads per round)
  // so RoundStats timings are always populated; they feed telemetry only
  // and never influence the simulation itself.
  const std::uint64_t t_begin = obs::now_ns();
  if (stats != nullptr) stats->dirty_seeds = c.changed.size();
  std::size_t partial_n = 0;
  // The incremental engine needs the C.4 footprints; exhaustive projection
  // mode (a testing mode) always recomputes everything.
  const bool carry = cfg_.incremental && cfg_.use_projection_pruning && c.valid;

  const std::uint8_t* flags = state.flags().data();
  const rt::SecurityView base_view = make_base_view(graph_, cfg_, flags);
  // One word-packed snapshot of the round's secure state, shared read-only
  // by every worker; per-candidate projections memcpy+patch it.
  c.base_mask.build(base_view, c.mask_arena);

  c.work.clear();
  if (!carry) {
    for (std::size_t d = 0; d < n; ++d) c.work.push_back(d);
  } else {
    // Dirty scan: destination d must be recomputed iff some changed node
    // can influence a value its cached bundle still contributes. Two
    // refinements keep the scan from saturating:
    //
    //  - When stubs do not break ties, a newly simplex-secured stub is
    //    invisible to every other destination's tree: it never transits
    //    traffic, applies_secp() is false for it, and the stub branch of
    //    the C.4 Rule-1 affected set is gated on stub_breaks_ties — so
    //    its flag only matters where it is the destination itself, which
    //    is force-dirtied directly.
    //
    //  - Projection entries are tested per candidate: an entry is stale
    //    only if a bit changed inside the base set P (fp_tree), inside
    //    the entry's own flipped-tree delta, or on the candidate itself.
    //    Without allow_turn_off a proj_on entry whose candidate has since
    //    flipped on is inert forever (the fold filters it), so neither
    //    its delta nor its candidate bit can dirty the destination —
    //    this is what keeps a freshly-flipped ISP from dirtying every
    //    destination that ever evaluated it. With allow_turn_off
    //    relevance can flip back, so every entry stays live.
    for (const AsId y : c.changed) {
      if (!cfg_.stub_breaks_ties && graph_.is_stub(y)) {
        c.dirty_mask[y] = 1;
      } else {
        c.changed_mask[y] = 1;
      }
    }
    const bool turn_off = cfg_.allow_turn_off;
    const auto stale = [&](const DestBundle& b, const auto& entries,
                           bool on) {
      for (const auto& e : entries) {
        if (!turn_off && (on ? flags[e.cand] != 0 : flags[e.cand] == 0)) {
          continue;  // inert, and can never become relevant again
        }
        if (c.changed_mask[e.cand] != 0) return true;
        for (std::uint32_t k = e.fp_begin; k < e.fp_end; ++k) {
          if (c.changed_mask[b.proj_fp[k]] != 0) return true;
        }
      }
      return false;
    };
    std::size_t n_tree = 0, n_proj = 0, cand_tree = 0, cand_proj = 0,
                stale_proj = 0;
    for (std::size_t d = 0; d < n; ++d) {
      if (c.dirty_mask[d] != 0) {
        c.work.push_back(d);
        continue;
      }
      const DestBundle& b = c.bundles[d];
      bool dirty = false;
      for (const AsId y : b.fp_tree) {
        if (c.changed_mask[y] != 0) {
          dirty = true;
          break;
        }
      }
      if (dirty) {
        ++n_tree;
        cand_tree += b.proj_on.size() + b.proj_off.size();
        c.work.push_back(d);
      } else if (stale(b, b.proj_on, true) || stale(b, b.proj_off, false)) {
        ++n_proj;
        cand_proj += b.proj_on.size() + b.proj_off.size();
        for (const auto& e : b.proj_on) {
          if (c.changed_mask[e.cand]) { ++stale_proj; continue; }
          for (std::uint32_t k = e.fp_begin; k < e.fp_end; ++k)
            if (c.changed_mask[b.proj_fp[k]]) { ++stale_proj; break; }
        }
        c.work.push_back(d);
        // Base tree provably unchanged: with the cross-round caches in
        // place, only the stale projection entries need recomputing.
        if (c.big_cache) {
          c.partial_mask[d] = 1;
          ++partial_n;
        }
      }
    }
    if (std::getenv("SBGP_DIRTY_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "round %zu: tree-dirty %zu (cands %zu), proj-dirty %zu "
                   "(cands %zu, stale %zu)\n",
                   round, n_tree, cand_tree, n_proj, cand_proj, stale_proj);
    }
  }
  const std::uint64_t t_scan = obs::now_ns();
  const auto scratch_of_worker = [&c]() -> WorkerScratch& {
    const std::size_t w = par::ThreadPool::current_worker_index();
    assert(w < c.scratch.size());
    return c.scratch[w];
  };
  // Full (re)computation of one destination's bundle, against the slab
  // store's RIB view (and cached-tree slot) when the cross-round caches are
  // enabled, else per-worker scratch. Either way the tiebreaks are sorted
  // once per RIB so every tree build selects winners positionally.
  const auto run_full = [&](std::size_t d, WorkerScratch& s, DestBundle& out) {
    if (c.big_cache) {
      rt::RibStore& store = *c.rib_store;
      if (!store.ready(static_cast<AsId>(d))) {  // normally primed by the
        s.rc.compute(static_cast<AsId>(d), s.rib);  // starting pass
        rt::sort_tiebreaks(graph_, cfg_.tiebreak, s.rib);
        store.put(static_cast<AsId>(d), s.rib);
      }
      compute_bundle(graph_, cfg_, base_view, c.base_mask,
                     static_cast<AsId>(d), s, store.view(static_cast<AsId>(d)),
                     c.trees[d], out);
    } else {
      s.rc.compute(static_cast<AsId>(d), s.rib);
      rt::sort_tiebreaks(graph_, cfg_.tiebreak, s.rib);
      compute_bundle(graph_, cfg_, base_view, c.base_mask,
                     static_cast<AsId>(d), s, s.rib, s.tree, out);
    }
  };
  const bool dbg = std::getenv("SBGP_DIRTY_DEBUG") != nullptr;
  const auto run_one = [&](std::size_t d, WorkerScratch& s) {
    const auto q0 = dbg ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
    if (c.partial_mask[d] != 0) {
      update_bundle_partial(graph_, cfg_, base_view, c.base_mask,
                            c.changed_mask.data(), static_cast<AsId>(d), s,
                            c.rib_store->view(static_cast<AsId>(d)),
                            c.trees[d], c.bundles[d]);
      if (dbg) {
        c.dbg_part_ns += (std::chrono::steady_clock::now() - q0).count();
        ++c.dbg_part_n;
      }
    } else {
      run_full(d, s, c.bundles[d]);
      if (dbg) {
        c.dbg_full_ns += (std::chrono::steady_clock::now() - q0).count();
        ++c.dbg_full_n;
      }
    }
  };

  for (WorkerScratch& s : c.scratch) {
    s.proj_delta = 0;
    s.proj_full = 0;
    s.proj_touched = 0;
  }
  const auto t_par0 = std::chrono::steady_clock::now();
  if (cfg_.check_incremental && carry) {
    // Differential mode: recompute EVERY destination; dirty ones update
    // the cache (partial ones via the partial path, then verified against
    // a from-scratch bundle), clean ones are compared bit-for-bit against
    // it. Tasks must not throw (ThreadPool contract), so the first
    // divergence is recorded under a lock and thrown after the join.
    for (const std::size_t d : c.work) c.dirty_mask[d] = 1;
    std::mutex div_mutex;
    bool diverged = false;
    AsId div_dest = topo::kNoAs;
    std::string div_detail;
    par::parallel_for_dynamic(pool_, 0, n, [&](std::size_t di) {
      WorkerScratch& s = scratch_of_worker();
      const AsId d = static_cast<AsId>(di);
      const bool dirty = c.dirty_mask[di] != 0;
      if (dirty && c.partial_mask[di] == 0) {
        run_full(di, s, c.bundles[di]);
        return;
      }
      // Clean or partially updated: both must equal a from-scratch bundle.
      // The fresh RIB's tiebreaks are deliberately NOT pre-sorted, so this
      // recompute exercises the per-candidate hashing selection path and
      // cross-validates it against the positional path the cached (sorted)
      // RIBs take — same winners, bit-identical bundles.
      if (dirty) run_one(di, s);
      s.rc.compute(d, s.rib);
      compute_bundle(graph_, cfg_, base_view, c.base_mask, d, s, s.rib,
                     s.tree, s.check_tmp);
      const std::string err = bundle_divergence(c.bundles[di], s.check_tmp, flags);
      if (!err.empty()) {
        std::scoped_lock lock(div_mutex);
        if (!diverged) {
          diverged = true;
          div_dest = d;
          div_detail = dirty ? "partial update: " + err : err;
        }
      }
    });
    for (const std::size_t d : c.work) c.dirty_mask[d] = 0;
    if (diverged) throw IncrementalDivergence(round, div_dest, div_detail);
  } else {
    par::parallel_for_dynamic(pool_, 0, c.work.size(), [&](std::size_t wi) {
      run_one(c.work[wi], scratch_of_worker());
    });
  }
  if (dbg) {
    const auto t_par1 = std::chrono::steady_clock::now();
    std::fprintf(stderr,
                 "round %zu: parallel phase %.3f ms, work %zu "
                 "(full %.3f ms / %zu, partial %.3f ms / %zu)\n",
                 round,
                 std::chrono::duration<double, std::milli>(t_par1 - t_par0).count(),
                 c.work.size(), c.dbg_full_ns.exchange(0) * 1e-6,
                 c.dbg_full_n.exchange(0), c.dbg_part_ns.exchange(0) * 1e-6,
                 c.dbg_part_n.exchange(0));
  }
  // The masks set by the dirty scan stay live through the parallel phase
  // (the partial path reads changed_mask); clear them now.
  for (const AsId y : c.changed) {
    c.changed_mask[y] = 0;
    c.dirty_mask[y] = 0;
  }
  for (const std::size_t d : c.work) c.partial_mask[d] = 0;
  // Topology-delta force-dirty marks are consumed by this evaluation
  // whatever path it took (the carry scan picked them up via dirty_mask; a
  // full evaluation recomputed them anyway); reset their bits
  // unconditionally — they need not appear in `changed` or `work`.
  for (const std::size_t d : c.force_dirty) c.dirty_mask[d] = 0;
  c.force_dirty.clear();
  const std::uint64_t t_eval = obs::now_ns();

  // Fold all N bundles in destination order — fixed regardless of thread
  // count or of which destinations were recomputed, so full and
  // incremental rounds aggregate to bitwise-identical results. Inert
  // projection entries (candidate flipped since the bundle was cached)
  // are skipped: a full recompute would not have produced them, and on
  // freshly computed bundles the filter never fires.
  out.reset();
  for (std::size_t d = 0; d < n; ++d) {
    const DestBundle& b = c.bundles[d];
    for (const auto& e : b.util_out) out.util_out[e.node] += e.value;
    for (const auto& e : b.util_in) out.util_in[e.node] += e.value;
    for (const auto& p : b.proj_on) {
      if (flags[p.cand] != 0) continue;
      out.eval_on[p.cand] = 1;
      out.delta_on_out[p.cand] += p.d_out;
      out.delta_on_in[p.cand] += p.d_in;
    }
    for (const auto& p : b.proj_off) {
      if (flags[p.cand] == 0) continue;
      out.eval_off[p.cand] = 1;
      out.delta_off_out[p.cand] += p.d_out;
      out.delta_off_in[p.cand] += p.d_in;
    }
  }

  const std::uint64_t t_end = obs::now_ns();
  // Per-worker projection-path tallies, summed once per round (the workers
  // bump plain fields; no hot-path atomics).
  std::size_t proj_delta_n = 0, proj_full_n = 0, proj_touched_n = 0;
  for (const WorkerScratch& s : c.scratch) {
    proj_delta_n += s.proj_delta;
    proj_full_n += s.proj_full;
    proj_touched_n += s.proj_touched;
  }
  if (stats != nullptr) {
    stats->partial_updates = partial_n;
    stats->proj_delta_applied = proj_delta_n;
    stats->proj_full_fallback = proj_full_n;
    stats->proj_nodes_touched = proj_touched_n;
    stats->scan_ms = static_cast<double>(t_scan - t_begin) * 1e-6;
    stats->eval_ms = static_cast<double>(t_eval - t_scan) * 1e-6;
    stats->fold_ms = static_cast<double>(t_end - t_eval) * 1e-6;
  }
  {
    static obs::Counter& rounds_ctr =
        obs::Registry::global().counter("sim.rounds_evaluated");
    static obs::Counter& recomputed_ctr =
        obs::Registry::global().counter("sim.dest_recomputed");
    static obs::Counter& partial_ctr =
        obs::Registry::global().counter("sim.dest_partial_updates");
    static obs::Counter& proj_delta_ctr =
        obs::Registry::global().counter("sim.proj.delta_applied");
    static obs::Counter& proj_full_ctr =
        obs::Registry::global().counter("sim.proj.full_fallback");
    static obs::Counter& proj_touched_ctr =
        obs::Registry::global().counter("sim.proj.nodes_touched");
    rounds_ctr.add(1);
    recomputed_ctr.add(c.work.size());
    partial_ctr.add(partial_n);
    proj_delta_ctr.add(proj_delta_n);
    proj_full_ctr.add(proj_full_n);
    proj_touched_ctr.add(proj_touched_n);
    auto& tb = obs::TraceBuffer::global();
    if (tb.enabled()) {
      // Phase spans share the RoundStats boundaries exactly, so the Chrome
      // trace and the JSONL round records tell the same story.
      tb.record("sim.scan", t_begin, t_scan - t_begin);
      tb.record("sim.eval", t_scan, t_eval - t_scan);
      tb.record("sim.fold", t_eval, t_end - t_eval);
    }
  }

  c.valid = cfg_.use_projection_pruning;
  c.changed.clear();
  return c.work.size();
}

SimResult DeploymentSimulator::run(const DeploymentState& initial,
                                   const RoundObserver& observer) {
  const std::size_t n = graph_.num_nodes();
  SimResult result;
  result.final_state = initial;

  {
    // Starting utilities (the all-insecure state, Figures 4/5). When the
    // cross-round RIB cache is enabled this pass doubles as its primer:
    // the state-independent per-destination RIBs (Obs. C.1) are computed
    // here once, so no evaluated round ever pays for a RIB again. The
    // chunked fixed-order fold matches compute_utilities bit for bit.
    OBS_SPAN("sim.starting_utilities");
    const std::vector<std::uint8_t> nobody(n, 0);
    rt::UtilityAccumulator start(n);
    Cache& c = *cache_;
    if (c.big_cache && n > 0) {
      const std::size_t chunks = std::min<std::size_t>(n, 64);
      const std::size_t chunk = (n + chunks - 1) / chunks;
      std::vector<rt::UtilityAccumulator> partial(chunks,
                                                  rt::UtilityAccumulator(n));
      rt::SecurityView view;
      view.graph = &graph_;
      view.base = nobody.data();
      view.stub_breaks_ties = cfg_.stub_breaks_ties;
      rt::Arena nobody_arena;
      rt::SecureMask nobody_mask;
      nobody_mask.build(view, nobody_arena);
      rt::RibStore& store = *c.rib_store;
      par::parallel_for_dynamic(pool_, 0, chunks, [&](std::size_t ci) {
        rt::RibComputer rc(graph_);
        rt::TreeComputer tc(graph_);
        rt::DestRib rib;
        rt::RoutingTree tree;
        const std::size_t lo = ci * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t d = lo; d < hi; ++d) {
          const AsId dest = static_cast<AsId>(d);
          if (!store.ready(dest)) {
            rc.compute(dest, rib);
            // Pre-order the tiebreak sets by tie-break key: state-
            // independent, so every cross-round reuse of this RIB selects
            // winners positionally instead of hashing each candidate.
            rt::sort_tiebreaks(graph_, cfg_.tiebreak, rib);
            store.put(dest, rib);
          }
          const rt::RibView rv = store.view(dest);
          tc.compute(rv, nobody_mask, cfg_.tiebreak, tree);
          partial[ci].add_tree(graph_, rv, tree);
        }
      });
      for (const auto& p : partial) start.merge(p);
    } else {
      start = compute_utilities(graph_, nobody, cfg_, pool_);
    }
    result.starting_utility =
        cfg_.model == UtilityModel::Outgoing ? start.outgoing : start.incoming;
  }

  DeploymentState state = initial;
  std::unordered_map<std::uint64_t, std::size_t> seen;  // state hash -> round
  seen.emplace(state.hash(), 0);

  // Each run starts from an arbitrary state: drop any bundles cached by a
  // previous run, and break evaluate_state() continuity — the bundles left
  // behind by run() describe the state *before* its final flip application.
  cache_->valid = false;
  cache_->changed.clear();
  has_last_flags_ = false;

  RoundOutput round_out(n);
  std::vector<double> utility(n), proj_on(n), proj_off(n);
  std::vector<AsId> flip_on, flip_off;

  result.outcome = Outcome::RoundCapReached;
  for (std::size_t round = 1; round <= cfg_.max_rounds; ++round) {
    OBS_SPAN("sim.round");
    if (cfg_.stop_requested && cfg_.stop_requested()) {
      result.outcome = Outcome::Aborted;
      break;
    }
    RoundStats stats;
    stats.round = round;
    const std::size_t recomputed =
        evaluate_round(state, round_out, round, &stats);

    const auto& util_model =
        cfg_.model == UtilityModel::Outgoing ? round_out.util_out : round_out.util_in;
    const auto& delta_on =
        cfg_.model == UtilityModel::Outgoing ? round_out.delta_on_out
                                             : round_out.delta_on_in;
    const auto& delta_off =
        cfg_.model == UtilityModel::Outgoing ? round_out.delta_off_out
                                             : round_out.delta_off_in;

    flip_on.clear();
    flip_off.clear();
    for (AsId i = 0; i < n; ++i) {
      utility[i] = util_model[i];
      proj_on[i] = round_out.eval_on[i] != 0 ? util_model[i] + delta_on[i] : kNaN;
      proj_off[i] = round_out.eval_off[i] != 0 ? util_model[i] + delta_off[i] : kNaN;
      if (!graph_.is_isp(i)) continue;
      if (cfg_.frozen != nullptr && (*cfg_.frozen)[i] != 0) continue;
      // Myopic best response (Eq. 3): flip when projected *revenue* exceeds
      // (1+theta_i) times current revenue.
      const double theta_i =
          cfg_.per_node_theta != nullptr ? (*cfg_.per_node_theta)[i] : cfg_.theta;
      const auto revenue = [this](double volume) {
        return apply_pricing(cfg_.pricing, cfg_.pricing_tier_size, volume);
      };
      if (!state.is_secure(i)) {
        if (round_out.eval_on[i] != 0 &&
            revenue(proj_on[i]) > (1.0 + theta_i) * revenue(utility[i])) {
          flip_on.push_back(i);
        }
      } else if (round_out.eval_off[i] != 0 &&
                 revenue(proj_off[i]) > (1.0 + theta_i) * revenue(utility[i])) {
        flip_off.push_back(i);
      }
    }

    if (observer) {
      RoundObservation obs;
      obs.round = round;
      obs.secure = &state.flags();
      obs.utility = &utility;
      obs.projected_on = &proj_on;
      obs.projected_off = &proj_off;
      obs.flipping_on = &flip_on;
      obs.flipping_off = &flip_off;
      observer(obs);
    }

    if (flip_on.empty() && flip_off.empty()) {
      result.outcome = Outcome::Stable;
      break;
    }

    stats.recomputed_destinations = recomputed;
    const std::size_t stubs_before =
        state.num_secure_of_class(graph_, topo::AsClass::Stub);
    // Apply the flips, recording every node whose bit actually changed —
    // the seed of next round's dirty scan. A stub already simplex-secured
    // by an earlier deployer does not change and is not recorded.
    auto& changed = cache_->changed;
    for (const AsId i : flip_on) {
      state.set_secure(i, true);
      changed.push_back(i);
      for (const AsId c : graph_.customers(i)) {
        if (graph_.is_stub(c) && !state.is_secure(c) &&
            (cfg_.frozen == nullptr || (*cfg_.frozen)[c] == 0)) {
          state.set_secure(c, true);
          changed.push_back(c);
        }
      }
    }
    for (const AsId i : flip_off) {
      state.set_secure(i, false);
      changed.push_back(i);
    }
    stats.newly_secure_isps = flip_on.size();
    stats.turned_off = flip_off.size();
    stats.newly_secure_stubs =
        state.num_secure_of_class(graph_, topo::AsClass::Stub) - stubs_before;
    stats.total_secure_ases = state.num_secure();
    stats.total_secure_isps = state.num_secure_of_class(graph_, topo::AsClass::Isp);
    result.rounds.push_back(stats);

    const auto [it, inserted] = seen.emplace(state.hash(), round);
    if (!inserted) {
      result.outcome = Outcome::Oscillating;
      break;
    }
  }

  result.final_state = state;
  if (result.outcome == Outcome::Stable) {
    // Stability was certified by evaluating exactly `state` and finding no
    // profitable flip, so `utility` already holds u_n(final state) under
    // the chosen model (folded per destination in ascending order, the
    // same fixed order both engines use) — no extra full pass needed.
    result.final_utility = utility;
  } else {
    const auto fin = compute_utilities(graph_, state.flags(), cfg_, pool_);
    result.final_utility =
        cfg_.model == UtilityModel::Outgoing ? fin.outgoing : fin.incoming;
  }
  return result;
}

const StateEvaluation& DeploymentSimulator::evaluate_state(
    const DeploymentState& state) {
  const std::size_t n = graph_.num_nodes();
  if (state.flags().size() != n) {
    throw std::invalid_argument("evaluate_state: state size mismatch");
  }
  Cache& c = *cache_;
  if (eval_out_ == nullptr) eval_out_ = std::make_unique<RoundOutput>(n);
  if (!has_last_flags_) {
    // No continuity (first call, or run()/a node add intervened): the cached
    // bundles do not describe any previously evaluated state.
    c.valid = false;
    c.changed.clear();
  } else if (c.valid) {
    // Warm path: seed the dirty scan with the flag diff against the state
    // evaluated last time — exactly the role run()'s flip application plays
    // between rounds. Topology-delta force-dirty marks are already sitting
    // in dirty_mask and are picked up by the scan independently.
    const auto& now = state.flags();
    for (AsId i = 0; i < n; ++i) {
      if (now[i] != last_flags_[i]) c.changed.push_back(i);
    }
  }
  StateEvaluation& e = eval_;
  e.stats = RoundStats{};
  const std::size_t recomputed =
      evaluate_round(state, *eval_out_, 0, &e.stats);
  e.stats.recomputed_destinations = recomputed;
  e.stats.total_secure_ases = state.num_secure();
  e.stats.total_secure_isps =
      state.num_secure_of_class(graph_, topo::AsClass::Isp);

  const RoundOutput& out = *eval_out_;
  const auto& util_model =
      cfg_.model == UtilityModel::Outgoing ? out.util_out : out.util_in;
  const auto& delta_on = cfg_.model == UtilityModel::Outgoing
                             ? out.delta_on_out
                             : out.delta_on_in;
  const auto& delta_off = cfg_.model == UtilityModel::Outgoing
                              ? out.delta_off_out
                              : out.delta_off_in;
  e.utility.resize(n);
  e.projected_on.resize(n);
  e.projected_off.resize(n);
  e.would_flip_on.assign(n, 0);
  e.would_flip_off.assign(n, 0);
  for (AsId i = 0; i < n; ++i) {
    e.utility[i] = util_model[i];
    e.projected_on[i] =
        out.eval_on[i] != 0 ? util_model[i] + delta_on[i] : kNaN;
    e.projected_off[i] =
        out.eval_off[i] != 0 ? util_model[i] + delta_off[i] : kNaN;
    if (!graph_.is_isp(i)) continue;
    if (cfg_.frozen != nullptr && (*cfg_.frozen)[i] != 0) continue;
    const double theta_i =
        cfg_.per_node_theta != nullptr ? (*cfg_.per_node_theta)[i] : cfg_.theta;
    const auto revenue = [this](double volume) {
      return apply_pricing(cfg_.pricing, cfg_.pricing_tier_size, volume);
    };
    if (!state.is_secure(i)) {
      if (out.eval_on[i] != 0 &&
          revenue(e.projected_on[i]) > (1.0 + theta_i) * revenue(e.utility[i])) {
        e.would_flip_on[i] = 1;
      }
    } else if (out.eval_off[i] != 0 &&
               revenue(e.projected_off[i]) >
                   (1.0 + theta_i) * revenue(e.utility[i])) {
      e.would_flip_off[i] = 1;
    }
  }
  last_flags_ = state.flags();
  has_last_flags_ = true;
  return eval_;
}

void DeploymentSimulator::apply_topo_op(topo::AsGraph& g, const topo::TopoOp& op,
                                        std::size_t row_budget,
                                        TopoApplyResult& out) {
  Cache& c = *cache_;
  const std::size_t n = graph_.num_nodes();

  if (op.kind == topo::TopoOp::Kind::AddStub) {
    // Every per-node structure — RIB slabs, bundle vectors, worker scratch,
    // SecureMask words, and any user-supplied per-node config arrays — is
    // dimensioned at |V|; a node add rebuilds the caches wholesale. Config
    // arrays cannot be resized from here, so reject the combination.
    if (cfg_.tiebreak.rank != nullptr) {
      throw std::invalid_argument(
          "topology delta: node add with an external tiebreak rank table");
    }
    if (cfg_.per_node_theta != nullptr || cfg_.frozen != nullptr) {
      throw std::invalid_argument(
          "topology delta: node add with per-node theta or frozen arrays");
    }
    out.patch.merge(g.apply_op(op, row_budget));
    cache_ = std::make_unique<Cache>(graph_, pool_.size(), cfg_);
    eval_out_.reset();
    has_last_flags_ = false;
    labeler_.reset();  // sized scratch is |V|-dependent
    out.full_invalidation = true;
    return;
  }

  // Edge ops. The candidate tests run on labels computed against the
  // pre-op graph; a SetRelationship tests both the removal of the current
  // relationship and the addition of the target one against the same pre-op
  // labels — exact, because any destination whose RIB the removal leaves
  // unchanged has identical endpoint labels before and after it.
  struct Event {
    topo::Link rel;  // b's role toward a
    bool added;
  };
  Event events[2];
  std::size_t n_events = 0;
  switch (op.kind) {
    case topo::TopoOp::Kind::AddCustomerProvider:
      events[n_events++] = {topo::Link::Customer, true};  // b = a's customer
      break;
    case topo::TopoOp::Kind::AddPeer:
      events[n_events++] = {topo::Link::Peer, true};
      break;
    case topo::TopoOp::Kind::RemoveEdge: {
      topo::Link cur;
      if (op.a < n && op.b < n && graph_.link_between(op.a, op.b, cur)) {
        events[n_events++] = {cur, false};
      }
      break;  // missing edge: apply_op below throws with the graph untouched
    }
    case topo::TopoOp::Kind::SetRelationship: {
      topo::Link cur;
      if (op.a < n && op.b < n && graph_.link_between(op.a, op.b, cur) &&
          cur != op.rel) {
        events[n_events++] = {cur, false};
        events[n_events++] = {op.rel, true};
      }
      break;
    }
    case topo::TopoOp::Kind::AddStub:
      break;  // handled above
  }

  const bool have_big = c.big_cache && c.rib_store != nullptr;
  const bool mark_dirty = c.valid && cfg_.incremental;
  const bool want_labels = n_events > 0 && (have_big || mark_dirty);
  if (want_labels) {
    if (labeler_ == nullptr) {
      labeler_ = std::make_unique<rt::SourceLabelComputer>(graph_);
    }
    labeler_->compute(op.a, lbl_cls_a_, lbl_len_a_);
    labeler_->compute(op.b, lbl_cls_b_, lbl_len_b_);
  }

  topo::TopoPatchStats patch = g.apply_op(op, row_budget);
  if (n_events == 0) {
    // Only a SetRelationship to the already-current relationship reaches
    // here (everything else either produced an event or threw): a no-op.
    out.patch.merge(patch);
    return;
  }
  if (!want_labels) {
    // Nothing cached worth preserving (small cache, bundles not valid):
    // just drop continuity; the next evaluation is full anyway.
    out.patch.merge(patch);
    c.valid = false;
    return;
  }

  const auto label_hit = [&](AsId d) {
    for (std::size_t e = 0; e < n_events; ++e) {
      if (rt::edge_candidate_hits(lbl_cls_a_[d], lbl_len_a_[d], lbl_cls_b_[d],
                                  lbl_len_b_[d], events[e].rel,
                                  events[e].added)) {
        return true;
      }
      if (rt::edge_candidate_hits(lbl_cls_b_[d], lbl_len_b_[d], lbl_cls_a_[d],
                                  lbl_len_a_[d], topo::reverse(events[e].rel),
                                  events[e].added)) {
        return true;
      }
    }
    return false;
  };
  std::vector<std::uint8_t> touched(n, 0);
  for (const AsId t : patch.touched) touched[t] = 1;
  for (const AsId t : patch.class_changed) touched[t] = 1;

  const auto force = [&](std::size_t d) {
    if (c.dirty_mask[d] == 0) {
      c.dirty_mask[d] = 1;
      c.force_dirty.push_back(d);
      ++out.bundles_invalidated;
    }
  };
  for (std::size_t d = 0; d < n; ++d) {
    if (label_hit(static_cast<AsId>(d))) {
      // The edge carries a best-or-tied route offer at an endpoint: this
      // destination's static RIB (class/length/tiebreak structure anywhere
      // in the graph) may change. Stale the stored RIB and force a full
      // bundle recompute.
      if (have_big && c.rib_store->ready(static_cast<AsId>(d))) {
        c.rib_store->invalidate(static_cast<AsId>(d));
        ++out.ribs_invalidated;
      }
      if (mark_dirty) force(d);
      continue;
    }
    if (!mark_dirty) continue;
    // RIB provably unchanged; the cached bundle can still be stale if its
    // secure-candidate footprint contains a touched or reclassified node
    // (class moves applies_secp, adjacency moves the simplex-stub provider
    // probe and the Rule-2 stub-provider set). The footprint always
    // contains the destination itself, so the op endpoints' own
    // destinations are re-marked here too.
    const DestBundle& b = c.bundles[d];
    bool fp = false;
    for (const AsId y : b.fp_tree) {
      if (touched[y] != 0) {
        fp = true;
        break;
      }
    }
    if (!fp) {
      for (const AsId y : b.proj_fp) {
        if (touched[y] != 0) {
          fp = true;
          break;
        }
      }
    }
    if (fp) force(d);
  }
  out.patch.merge(patch);
}

DeploymentSimulator::TopoApplyResult DeploymentSimulator::apply_topology_delta(
    topo::AsGraph& graph, const topo::TopoDelta& delta,
    std::size_t row_budget) {
  if (&graph != &graph_) {
    throw std::invalid_argument(
        "apply_topology_delta: graph is not the graph this simulator was "
        "constructed over");
  }
  TopoApplyResult out;
  for (const topo::TopoOp& op : delta.ops) {
    apply_topo_op(graph, op, row_budget, out);
  }
  {
    static obs::Counter& ops_ctr =
        obs::Registry::global().counter("sim.topo.ops_applied");
    static obs::Counter& rib_ctr =
        obs::Registry::global().counter("sim.topo.ribs_invalidated");
    static obs::Counter& bundle_ctr =
        obs::Registry::global().counter("sim.topo.bundles_invalidated");
    ops_ctr.add(delta.ops.size());
    rib_ctr.add(out.ribs_invalidated);
    bundle_ctr.add(out.bundles_invalidated);
  }
  return out;
}

}  // namespace sbgp::core
