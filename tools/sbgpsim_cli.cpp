// sbgpsim — command-line driver for the library.
//
//   sbgpsim generate --nodes 5000 --seed 1 --out graph.txt [--augment]
//   sbgpsim simulate [--graph g.txt | --nodes N] [--adopters SPEC]
//                    [--theta F] [--model outgoing|incoming] [--x F]
//                    [--stub-ties 0|1] [--csv]
//   sbgpsim sweep    [--graph g.txt | --nodes N] [--adopters SPEC]
//                    [--thetas 0,0.05,0.1] [--workers N] [--csv]
//   sbgpsim analyze  [--graph g.txt | --nodes N]
//                    (tiebreaks | diamonds | resilience | pathlens)
//   sbgpsim jobs     (run | status | merge) --spec spec.json
//                    --store results.jsonl [--workers N] [--timeout-s F]
//                    [--retries K] [--no-resume] [--progress-s F] [--csv]
//   sbgpsim jobs run --spec spec.json --run-dir DIR [--workers N]
//                    (multi-process fleet: N worker processes over leased
//                     shards; 0 = coordinate only, attach workers below)
//   sbgpsim worker   --run-dir DIR [--worker-id ID] [--ttl-s F]
//                    (attach one worker process to a fleet run directory —
//                     possibly from another host over a shared filesystem)
//   sbgpsim scenario run --scenario scn.json [--graph g.txt | --nodes N]
//                    [--adopters SPEC] [--simulate] [--workers N] [--csv]
//   sbgpsim validate [--scenario FILE]... FILE...
//                    (JSON / JSONL well-formedness; --scenario FILEs are
//                     additionally checked against the ScenarioSpec schema)
//
// Observability (simulate / sweep / jobs run): --trace-out FILE writes a
// Chrome trace-event JSON (chrome://tracing, Perfetto), --metrics-out FILE
// streams telemetry JSONL (round/job records + a metrics-registry
// snapshot), --obs-summary prints a per-span table to stderr.
//
// Adopter SPEC: none | top:K | cps | cps+top:K | random:K | asn:1,2,3
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/analysis.h"
#include "core/resilience.h"
#include "core/simulator.h"
#include "exp/fleet.h"
#include "exp/job_spec.h"
#include "exp/result_store.h"
#include "exp/runner.h"
#include "exp/scheduler.h"
#include "exp/telemetry.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/rib.h"
#include "scenario/engine.h"
#include "scenario/scenario_spec.h"
#include "stats/table.h"
#include "svc/server.h"
#include "svc/session.h"
#include "topology/graph_io.h"
#include "topology/topology_gen.h"

namespace {

using namespace sbgp;

// Exit codes (documented in README): anything not listed here is a bug.
constexpr int kExitOk = 0;          // success
constexpr int kExitUsage = 2;       // bad command line / malformed spec input
constexpr int kExitDivergence = 3;  // --check-incremental tripped
constexpr int kExitRuntime = 4;     // runtime failure (failed/timed-out jobs,
                                    // I/O errors, invalid data files)
constexpr int kExitWorker = 5;      // fleet worker-mode failure (unusable run
                                    // directory, no spec within max-idle)
constexpr int kExitService = 6;     // serve/client transport failure (cannot
                                    // bind/connect the Unix socket, peer died)

struct CliOptions {
  std::string self_exe;    // argv[0] — the fleet coordinator re-execs itself
  std::string command;
  std::string subcommand;  // jobs: run | status | merge; analyze: mode
  std::vector<std::string> positionals;  // all non-flag args (validate FILEs)
  std::string trace_out;    // Chrome trace-event JSON path
  std::string metrics_out;  // telemetry JSONL path
  bool obs_summary = false;
  std::string graph_file;
  std::string out_file;
  std::string spec_file;
  std::string store_file;
  std::string run_dir;    // fleet run directory (jobs run / worker / status)
  std::string worker_id;  // worker: this process's id; default w<pid>
  double ttl_s = 10.0;    // fleet lease TTL
  double max_idle_s = 0.0;   // worker: exit after this long with no work
  double max_wall_s = 0.0;   // coordinator: abort wedged runs
  std::size_t shard_size = 0;  // 0 = auto
  int max_restarts = 2;
  int max_steals = 2;
  std::vector<std::string> scenario_files;  // --scenario (repeatable)
  bool simulate_first = false;              // scenario run: simulate before attack
  std::string adopters = "cps+top:5";
  std::string thetas = "0,0.05,0.1,0.2,0.35,0.5";
  std::uint32_t nodes = 2000;
  std::uint64_t seed = 42;
  std::size_t workers = 0;  // 0 = hardware
  double theta = 0.05;
  double x = 0.10;
  double timeout_s = 0.0;
  double progress_s = 5.0;
  int retries = 0;
  bool augment = false;
  bool csv = false;
  bool stub_ties = true;
  bool resume = true;
  bool incremental = true;
  bool check_incremental = false;
  bool projection_delta = true;
  core::UtilityModel model = core::UtilityModel::Outgoing;
  std::string socket_path;          // serve/client: Unix-domain socket path
  bool check_topo_delta = false;    // serve: lockstep topology-delta checking
  std::size_t topo_row_budget = 0;  // serve: CSR patch row budget (0 = auto)
};

[[noreturn]] void usage(int code) {
  std::cerr <<
      "usage: sbgpsim <generate|simulate|sweep|analyze|jobs|worker|scenario"
      "|validate|serve|client> [options]\n"
      "       sbgpsim --version\n"
      "  common: --nodes N --seed S --x F --graph FILE\n"
      "  generate: --out FILE [--augment]\n"
      "  simulate: --adopters SPEC --theta F --model outgoing|incoming\n"
      "            --stub-ties 0|1 [--csv]\n"
      "  sweep:    --adopters SPEC --thetas 0,0.05,... [--workers N] [--csv]\n"
      "  simulate/sweep: [--no-incremental] [--check-incremental]\n"
      "            (full per-round recompute / differential incremental check)\n"
      "            [--no-projection-delta] (full tree rebuild per projection)\n"
      "  analyze:  tiebreaks | diamonds | resilience | pathlens\n"
      "  jobs:     run|status|merge --spec FILE --store FILE\n"
      "            run: [--workers N] [--timeout-s F] [--retries K]\n"
      "                 [--no-resume] [--progress-s F]\n"
      "            merge: [--csv]\n"
      "            fleet (multi-process): run --spec FILE --run-dir DIR\n"
      "              [--workers N (0 = coordinate only)] [--shard-size N]\n"
      "              [--ttl-s F] [--max-restarts K] [--max-steals K]\n"
      "              [--max-wall-s F]; status/merge accept --run-dir too\n"
      "  worker:   --run-dir DIR [--worker-id ID] [--ttl-s F]\n"
      "            [--max-idle-s F] [--timeout-s F] [--retries K]\n"
      "  scenario: run --scenario FILE [--adopters SPEC] [--simulate]\n"
      "            [--workers N] [--csv]  (attack matrix vs deployment state)\n"
      "  sweep:    [--scenario FILE]  (evaluate the matrix per theta)\n"
      "  validate: [--scenario FILE]... FILE...  (JSON/JSONL well-formedness;\n"
      "            --scenario FILEs also schema-checked as ScenarioSpecs)\n"
      "  serve:    --socket PATH [--graph FILE | --nodes N] [--adopters SPEC]\n"
      "            [--theta F] [--model outgoing|incoming]\n"
      "            [--check-topo-delta] [--topo-row-budget N]\n"
      "            [--metrics-out FILE]  (long-lived what-if service, NDJSON\n"
      "            over a Unix socket; SIGTERM drains and exits 0)\n"
      "  client:   --socket PATH ['{\"op\":...}' ... | requests on stdin]\n"
      "            (one JSON request per line; replies echo to stdout)\n"
      "  observability (simulate/sweep/jobs run/serve):\n"
      "            [--trace-out FILE] [--metrics-out FILE] [--obs-summary]\n"
      "  adopter SPEC: none | top:K | cps | cps+top:K | random:K | asn:1,2,3\n"
      "  exit codes: 0 ok | 2 usage | 3 incremental/topology-delta divergence\n"
      "              | 4 runtime | 5 fleet worker failure\n"
      "              | 6 service transport failure (serve bind / client connect)\n";
  std::exit(code);
}

// Strict numeric flag parsing: a malformed value is a usage error (exit 2),
// never an uncaught std::sto* throw (which would abort without a message).
std::uint64_t parse_u64_flag(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const unsigned long long r = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    std::cerr << flag << ": invalid number '" << v << "'\n";
    usage(kExitUsage);
  }
}

double parse_double_flag(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double r = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    std::cerr << flag << ": invalid number '" << v << "'\n";
    usage(kExitUsage);
  }
}

int parse_int_flag(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const int r = std::stoi(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    std::cerr << flag << ": invalid number '" << v << "'\n";
    usage(kExitUsage);
  }
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  if (argc < 2) usage(kExitUsage);
  o.self_exe = argv[0];
  o.command = argv[1];
  if (o.command == "--version" || o.command == "-V") {
    std::cout << "sbgpsim " << obs::build_info_line() << "\n";
    std::exit(kExitOk);
  }
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(kExitUsage);
      return argv[++i];
    };
    if (a == "--nodes") {
      o.nodes = static_cast<std::uint32_t>(parse_u64_flag(a, next()));
    }
    else if (a == "--seed") o.seed = parse_u64_flag(a, next());
    else if (a == "--graph") o.graph_file = next();
    else if (a == "--out") o.out_file = next();
    else if (a == "--spec") o.spec_file = next();
    else if (a == "--store") o.store_file = next();
    else if (a == "--scenario") o.scenario_files.push_back(next());
    else if (a == "--simulate") o.simulate_first = true;
    else if (a == "--adopters") o.adopters = next();
    else if (a == "--theta") o.theta = parse_double_flag(a, next());
    else if (a == "--thetas") o.thetas = next();
    else if (a == "--x") o.x = parse_double_flag(a, next());
    else if (a == "--workers") o.workers = parse_u64_flag(a, next());
    else if (a == "--timeout-s") o.timeout_s = parse_double_flag(a, next());
    else if (a == "--progress-s") o.progress_s = parse_double_flag(a, next());
    else if (a == "--retries") o.retries = parse_int_flag(a, next());
    else if (a == "--run-dir") o.run_dir = next();
    else if (a == "--worker-id") o.worker_id = next();
    else if (a == "--ttl-s") o.ttl_s = parse_double_flag(a, next());
    else if (a == "--max-idle-s") o.max_idle_s = parse_double_flag(a, next());
    else if (a == "--max-wall-s") o.max_wall_s = parse_double_flag(a, next());
    else if (a == "--shard-size") o.shard_size = parse_u64_flag(a, next());
    else if (a == "--max-restarts") o.max_restarts = parse_int_flag(a, next());
    else if (a == "--max-steals") o.max_steals = parse_int_flag(a, next());
    else if (a == "--socket") o.socket_path = next();
    else if (a == "--check-topo-delta") o.check_topo_delta = true;
    else if (a == "--topo-row-budget") {
      o.topo_row_budget = parse_u64_flag(a, next());
    }
    else if (a == "--no-resume") o.resume = false;
    else if (a == "--no-incremental") o.incremental = false;
    else if (a == "--check-incremental") o.check_incremental = true;
    else if (a == "--no-projection-delta") o.projection_delta = false;
    else if (a == "--augment") o.augment = true;
    else if (a == "--csv") o.csv = true;
    else if (a == "--trace-out") o.trace_out = next();
    else if (a == "--metrics-out") o.metrics_out = next();
    else if (a == "--obs-summary") o.obs_summary = true;
    else if (a == "--stub-ties") o.stub_ties = next() != "0";
    else if (a == "--model") {
      o.model = next() == "incoming" ? core::UtilityModel::Incoming
                                     : core::UtilityModel::Outgoing;
    } else if (a == "--help" || a == "-h") usage(0);
    else if (a[0] != '-') {
      if (o.subcommand.empty()) o.subcommand = a;
      o.positionals.push_back(a);
    } else usage(kExitUsage);
  }
  return o;
}

topo::Internet load_internet(const CliOptions& o) {
  topo::Internet net;
  if (!o.graph_file.empty()) {
    net.graph = topo::read_as_rel_file(o.graph_file);
    for (topo::AsId n = 0; n < net.graph.num_nodes(); ++n) {
      if (net.graph.is_content_provider(n)) net.cps.push_back(n);
    }
    net.tier1 = net.graph.tier_ones();
  } else {
    topo::InternetConfig cfg;
    cfg.total_ases = o.nodes;
    cfg.seed = o.seed;
    net = topo::generate_internet(cfg);
  }
  topo::apply_traffic_model(net.graph, net.cps, o.x);
  return net;
}

std::vector<topo::AsId> resolve_adopters(const topo::Internet& net,
                                         const std::string& spec,
                                         std::uint64_t seed) {
  try {
    return exp::resolve_adopter_spec(net, spec, seed);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    std::exit(kExitUsage);  // malformed --adopters is an argument error
  }
}

int cmd_generate(const CliOptions& o) {
  topo::InternetConfig cfg;
  cfg.total_ases = o.nodes;
  cfg.seed = o.seed;
  auto net = topo::generate_internet(cfg);
  if (o.augment) {
    std::size_t added = 0;
    net = topo::augment_cp_peering(net, 0.8, o.seed + 1, &added);
    std::cerr << "augmented: +" << added << " CP peering edges\n";
  }
  if (o.out_file.empty()) {
    topo::write_as_rel(net.graph, std::cout);
  } else {
    topo::write_as_rel_file(net.graph, o.out_file);
    std::cerr << "wrote " << o.out_file << ": " << net.graph.num_nodes()
              << " ASes, " << net.graph.num_customer_provider_edges() << " c2p, "
              << net.graph.num_peer_edges() << " p2p\n";
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// Observability plumbing shared by simulate / sweep / jobs run.

/// Arms the obs:: layer per the flags. Call before the workload starts so
/// the hot paths see the enable bits from the first round on.
void obs_start(const CliOptions& o) {
  if (!o.metrics_out.empty() || o.obs_summary) obs::set_metrics_enabled(true);
  if (!o.trace_out.empty() || o.obs_summary) {
    obs::TraceBuffer::global().set_enabled(true);
  }
}

/// Writes the Chrome trace and/or span summary after the workload. Tracing
/// is disabled first so the export reads a quiescent ring. Returns kExitOk
/// or kExitRuntime (unwritable trace file).
int obs_finish_trace(const CliOptions& o) {
  if (o.trace_out.empty() && !o.obs_summary) return kExitOk;
  auto& tb = obs::TraceBuffer::global();
  tb.set_enabled(false);
  if (!o.trace_out.empty()) {
    std::ofstream out(o.trace_out);
    if (!out) {
      std::cerr << "cannot write trace file '" << o.trace_out << "'\n";
      return kExitRuntime;
    }
    tb.write_chrome_json(out);
    std::cerr << "wrote " << o.trace_out << ": " << tb.snapshot().size()
              << " span(s)";
    if (tb.dropped() > 0) std::cerr << " (" << tb.dropped() << " dropped)";
    std::cerr << "\n";
  }
  if (o.obs_summary) {
    tb.write_summary(std::cerr);
    // Projection-path split: how often the frontier-delta kernel carried a
    // hypothetical flip vs falling back to a full tree rebuild.
    const auto delta_n =
        obs::Registry::global().counter("sim.proj.delta_applied").value();
    const auto full_n =
        obs::Registry::global().counter("sim.proj.full_fallback").value();
    const auto touched_n =
        obs::Registry::global().counter("sim.proj.nodes_touched").value();
    if (delta_n + full_n > 0) {
      std::cerr << "sim.proj: " << delta_n << " delta / " << full_n
                << " full (hit rate "
                << 100.0 * static_cast<double>(delta_n) /
                       static_cast<double>(delta_n + full_n)
                << "%, " << touched_n << " nodes touched)\n";
    }
  }
  return kExitOk;
}

core::SimConfig sim_config(const CliOptions& o) {
  core::SimConfig cfg;
  cfg.model = o.model;
  cfg.theta = o.theta;
  cfg.stub_breaks_ties = o.stub_ties;
  cfg.incremental = o.incremental;
  cfg.check_incremental = o.check_incremental;
  cfg.projection_delta = o.projection_delta;
  return cfg;
}

int cmd_simulate(const CliOptions& o) {
  const auto net = load_internet(o);
  const auto adopters = resolve_adopters(net, o.adopters, o.seed);
  obs_start(o);
  core::DeploymentSimulator sim(net.graph, sim_config(o));
  const auto result =
      sim.run(core::DeploymentState::initial(net.graph, adopters));

  if (!o.metrics_out.empty()) {
    exp::TelemetryLog log(o.metrics_out);
    exp::append_round_records(log, result, net.graph.num_nodes());
    log.append(exp::metrics_record());
    std::cerr << "wrote " << o.metrics_out << ": " << result.rounds.size()
              << " round record(s) + metrics snapshot\n";
  }
  const int obs_rc = obs_finish_trace(o);
  if (obs_rc != kExitOk) return obs_rc;

  stats::Table t({"round", "new_isps", "new_stubs", "turned_off", "secure_ases",
                  "secure_isps"});
  for (const auto& r : result.rounds) {
    t.begin_row();
    t.add(r.round);
    t.add(r.newly_secure_isps);
    t.add(r.newly_secure_stubs);
    t.add(r.turned_off);
    t.add(r.total_secure_ases);
    t.add(r.total_secure_isps);
  }
  if (o.csv) t.print_csv(std::cout);
  else t.print(std::cout);
  std::cerr << "outcome: " << core::to_string(result.outcome) << "; secure "
            << result.final_state.num_secure() << "/" << net.graph.num_nodes()
            << " ASes\n";
  return kExitOk;
}

// Loads the single --scenario FILE as a ScenarioSpec, or exits with the
// schema diagnostic. Malformed specs are argument errors (exit 2), matching
// the ScenarioSpec::from_json contract of field-path-prefixed messages.
scenario::ScenarioSpec load_scenario_or_die(const CliOptions& o) {
  if (o.scenario_files.size() > 1) {
    std::cerr << o.command << " takes a single --scenario FILE\n";
    usage(kExitUsage);
  }
  try {
    return scenario::ScenarioSpec::from_file(o.scenario_files[0]);
  } catch (const exp::JsonError& e) {
    std::cerr << "bad scenario " << o.scenario_files[0] << ": " << e.what()
              << "\n";
    std::exit(kExitUsage);
  }
}

// scenario run — evaluate a declarative attack matrix against one
// deployment state. The state is the --adopters seed set as-is, or (with
// --simulate) the fixed point the market simulation converges to from it.
int cmd_scenario(const CliOptions& o) {
  if (o.subcommand != "run") {
    std::cerr << "scenario needs a subcommand: run\n";
    usage(kExitUsage);
  }
  if (o.scenario_files.empty()) {
    std::cerr << "scenario run requires --scenario FILE\n";
    usage(kExitUsage);
  }
  const scenario::ScenarioSpec sspec = load_scenario_or_die(o);

  const auto net = load_internet(o);
  const auto adopters = resolve_adopters(net, o.adopters, o.seed);
  obs_start(o);
  std::unique_ptr<exp::TelemetryLog> telemetry;
  if (!o.metrics_out.empty()) {
    telemetry = std::make_unique<exp::TelemetryLog>(o.metrics_out);
  }

  const core::SimConfig cfg = sim_config(o);
  auto state = core::DeploymentState::initial(net.graph, adopters);
  if (o.simulate_first) {
    core::DeploymentSimulator sim(net.graph, cfg);
    auto result = sim.run(state);
    std::cerr << "simulated: outcome " << core::to_string(result.outcome)
              << "; secure " << result.final_state.num_secure() << "/"
              << net.graph.num_nodes() << " ASes\n";
    state = std::move(result.final_state);
  }

  scenario::EngineConfig ecfg;
  ecfg.tiebreak = cfg.tiebreak;
  ecfg.stub_breaks_ties = cfg.stub_breaks_ties;
  const scenario::ScenarioEngine engine(net.graph, ecfg);
  par::ThreadPool pool(o.workers);

  std::vector<std::string> headers = {"scenario", "pairs",  "mean_fooled",
                                      "fooled_w", "p90",    "disconnected",
                                      "nonconverged"};
  if (sspec.baseline) {
    headers.push_back("baseline");
    headers.push_back("delta");
  }
  stats::Table t(std::move(headers));
  for (const auto& point : sspec.expand()) {
    scenario::ScenarioResult r;
    try {
      r = engine.run(point, state.flags(), pool);
    } catch (const std::invalid_argument& e) {
      // Unsatisfiable placement/victim pools (unknown ASN, no stubs, …) are
      // spec errors, same class as a malformed file.
      std::cerr << "scenario '" << point.key() << "': " << e.what() << "\n";
      return kExitUsage;
    }
    t.begin_row();
    t.add(r.key);
    t.add(r.pairs);
    t.add(r.mean_fooled(), 4);
    t.add(r.fooled_weight.mean(), 4);
    t.add(r.fooled_fraction.quantile(0.9), 4);
    t.add(r.disconnected);
    t.add(r.nonconverged_pairs);
    if (sspec.baseline) {
      t.add(r.baseline_fooled.mean(), 4);
      t.add(r.delta_vs_baseline(), 4);
    }
    if (telemetry != nullptr) telemetry->append(exp::scenario_record(r));
  }
  if (telemetry != nullptr) telemetry->append(exp::metrics_record());
  const int obs_rc = obs_finish_trace(o);
  if (o.csv) t.print_csv(std::cout);
  else t.print(std::cout);
  std::cerr << "evaluated " << sspec.num_points()
            << " scenario point(s) against " << state.num_secure() << "/"
            << net.graph.num_nodes() << " secure ASes\n";
  return obs_rc;
}

// The single-axis θ sweep, ported onto the exp:: scheduler: builds a
// one-graph JobSpec and runs it (serially by default; --workers N shards
// it). Results come back merged in job-id order, which here is θ order —
// or (θ, scenario point) order when --scenario multiplies the job list.
int cmd_sweep(const CliOptions& o) {
  exp::JobSpec spec;
  spec.name = "cli-sweep";
  exp::GraphSpec g;
  g.file = o.graph_file;
  g.nodes = o.nodes;
  g.seed = o.seed;
  g.augment = o.augment;
  g.x = o.x;
  spec.graphs = {g};
  spec.adopters = {o.adopters};
  spec.models = {core::to_string(o.model)};
  spec.stub_ties = {o.stub_ties ? 1 : 0};
  spec.seeds = {o.seed};
  spec.incremental = o.incremental;
  spec.check_incremental = o.check_incremental;
  try {
    spec.thetas = exp::parse_double_list(o.thetas, "--thetas");
  } catch (const exp::JsonError& e) {
    std::cerr << e.what() << "\n";
    usage(kExitUsage);
  }
  for (const double theta : spec.thetas) {
    if (theta < 0.0) {
      std::cerr << "--thetas entries must be >= 0 (got "
                << exp::format_double(theta) << ")\n";
      usage(kExitUsage);
    }
  }
  if (!o.scenario_files.empty()) spec.scenario = load_scenario_or_die(o);

  obs_start(o);
  std::unique_ptr<exp::TelemetryLog> telemetry;
  if (!o.metrics_out.empty()) {
    telemetry = std::make_unique<exp::TelemetryLog>(o.metrics_out);
  }
  exp::SweepOptions opts;
  opts.workers = o.workers == 0 ? 1 : o.workers;
  opts.progress = nullptr;
  opts.telemetry = telemetry.get();
  exp::SweepScheduler scheduler(opts);
  const auto report = scheduler.run(spec, nullptr);
  if (telemetry != nullptr) telemetry->append(exp::metrics_record());
  const int obs_rc = obs_finish_trace(o);

  // Row labels come from the expanded job list, not spec.thetas: the
  // scenario axis (innermost) repeats each θ once per matrix point, so
  // records[i] lines up with jobs[i], not thetas[i].
  const auto jobs = spec.expand();
  const bool with_scenario = spec.scenario.has_value();
  std::vector<std::string> headers = {"theta",       "outcome",   "rounds",
                                      "secure_ases", "secure_isps",
                                      "frac_ases",   "frac_isps"};
  if (with_scenario) {
    headers.push_back("scenario");
    headers.push_back("mean_fooled");
  }
  stats::Table t(std::move(headers));
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const auto& r = report.records[i];
    t.begin_row();
    t.add(i < jobs.size() ? jobs[i].theta : 0.0, 3);
    if (r.status == "ok") {
      t.add(r.outcome);
      t.add(r.rounds);
      t.add(r.secure_ases);
      t.add(r.secure_isps);
      t.add(r.frac_ases, 4);
      t.add(r.frac_isps, 4);
      if (with_scenario) {
        t.add(r.scenario_key);
        t.add(r.scn_mean_fooled, 4);
      }
    } else {
      t.add(r.status + ": " + r.error);
    }
  }
  if (o.csv) t.print_csv(std::cout);
  else t.print(std::cout);
  if (report.failed != 0) return kExitRuntime;
  return obs_rc;
}

int cmd_analyze(const CliOptions& o) {
  const auto net = load_internet(o);
  par::ThreadPool pool(0);
  const auto cfg = sim_config(o);
  const std::string analysis =
      o.subcommand.empty() ? "tiebreaks" : o.subcommand;
  if (analysis == "tiebreaks") {
    const auto dist = core::tiebreak_distribution(net.graph, pool);
    std::cout << "mean tiebreak size: all " << dist.all.mean() << " isp "
              << dist.isp.mean() << " stub " << dist.stub.mean()
              << "; frac >1: " << dist.all.fraction_greater(1) << "\n";
  } else if (analysis == "diamonds") {
    const auto adopters = resolve_adopters(net, o.adopters, o.seed);
    for (const auto& d : core::count_diamonds(net.graph, adopters, pool)) {
      std::cout << "AS" << net.graph.asn(d.adopter) << ": " << d.diamonds
                << " contested stubs, " << d.strict_diamonds << " strict\n";
    }
  } else if (analysis == "resilience") {
    std::vector<std::uint8_t> nobody(net.graph.num_nodes(), 0);
    const auto r = core::measure_resilience(net.graph, nobody, cfg, 100, o.seed, pool);
    std::cout << "status quo hijack impact: mean " << r.mean_fooled() << ", p90 "
              << r.fooled_fraction.quantile(0.9) << " (over " << r.pairs
              << " pairs)\n";
  } else if (analysis == "pathlens") {
    for (const auto cp : net.cps) {
      std::cout << "AS" << net.graph.asn(cp) << ": avg path length "
                << rt::average_path_length_from(net.graph, cp) << "\n";
    }
  } else {
    usage(kExitUsage);
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// jobs — the experiment-orchestration entry points.

exp::JobSpec load_spec_or_die(const CliOptions& o) {
  // Fleet run directories carry their own spec.json, so --run-dir alone is
  // enough for status/merge against an existing run.
  std::string path = o.spec_file;
  if (path.empty() && !o.run_dir.empty()) {
    path = exp::FleetPaths::at(o.run_dir).spec;
  }
  if (path.empty()) {
    std::cerr << "jobs " << o.subcommand << " requires --spec FILE\n";
    usage(kExitUsage);
  }
  try {
    return exp::JobSpec::from_file(path);
  } catch (const exp::JsonError& e) {
    std::cerr << "bad spec " << path << ": " << e.what() << "\n";
    std::exit(kExitUsage);
  }
}

void print_merged(const std::vector<exp::JobRecord>& records, bool csv) {
  const bool with_scenario =
      std::any_of(records.begin(), records.end(),
                  [](const exp::JobRecord& r) { return !r.scenario_key.empty(); });
  std::vector<std::string> headers = {"job_id",      "key",         "status",
                                      "outcome",     "rounds",      "secure_ases",
                                      "secure_isps", "num_ases",    "num_isps",
                                      "frac_ases",   "frac_isps"};
  if (with_scenario) {
    headers.push_back("scn_pairs");
    headers.push_back("scn_mean_fooled");
  }
  stats::Table t(std::move(headers));
  for (const auto& r : records) {
    t.begin_row();
    t.add(r.job_id);
    t.add(r.job_key);
    t.add(r.status);
    t.add(r.outcome);
    t.add(r.rounds);
    t.add(r.secure_ases);
    t.add(r.secure_isps);
    t.add(r.num_ases);
    t.add(r.num_isps);
    t.add(exp::format_double(r.frac_ases));
    t.add(exp::format_double(r.frac_isps));
    if (with_scenario) {
      // The scenario identity is already embedded in job_key; only the
      // headline numbers get their own columns.
      t.add(r.scn_pairs);
      t.add(exp::format_double(r.scn_mean_fooled));
    }
  }
  if (csv) t.print_csv(std::cout);
  else t.print(std::cout);
}

// jobs run --run-dir DIR: the multi-process fleet path. --workers here means
// worker *processes* (default 2; 0 = coordinate only for externally attached
// `sbgpsim worker`s), unlike the in-process path where 0 means "hardware".
int cmd_jobs_run_fleet(const CliOptions& o, const exp::JobSpec& spec) {
  exp::FleetOptions fo;
  fo.run_dir = o.run_dir;
  fo.workers = o.workers;
  fo.shard_size = o.shard_size;
  fo.ttl_s = o.ttl_s;
  fo.max_restarts = o.max_restarts;
  fo.max_steals_per_shard = o.max_steals;
  fo.max_wall_s = o.max_wall_s;
  fo.timeout_s = o.timeout_s;
  fo.retries = o.retries;
  fo.log = &std::cerr;
  if (fo.workers > 0) {
    fo.spawn = [&o](std::size_t, const std::string& worker_id) {
      std::vector<std::string> argv = {
          o.self_exe,       "worker",
          "--run-dir",      o.run_dir,
          "--worker-id",    worker_id,
          "--ttl-s",        std::to_string(o.ttl_s),
          "--timeout-s",    std::to_string(o.timeout_s),
          "--retries",      std::to_string(o.retries)};
      return exp::spawn_process(argv, {});
    };
  }
  const auto report = exp::FleetCoordinator(fo, spec).run();
  // A reconcile mismatch means two executions of the same grid point
  // disagreed — a determinism bug, same family as incremental divergence.
  if (report.reconcile_mismatches != 0) return kExitDivergence;
  if (report.aborted || report.missing != 0 || report.failed != 0 ||
      report.timed_out != 0) {
    return kExitRuntime;
  }
  return kExitOk;
}

int cmd_jobs_run(const CliOptions& o) {
  const auto spec = load_spec_or_die(o);
  if (!o.run_dir.empty()) return cmd_jobs_run_fleet(o, spec);
  if (o.store_file.empty()) {
    std::cerr << "jobs run requires --store FILE (or --run-dir DIR)\n";
    usage(kExitUsage);
  }
  // Observability config: spec scalars provide defaults, CLI flags win.
  CliOptions eff = o;
  if (eff.metrics_out.empty()) eff.metrics_out = spec.metrics_out;
  if (eff.trace_out.empty()) eff.trace_out = spec.trace_out;
  eff.obs_summary = eff.obs_summary || spec.obs_summary;
  obs_start(eff);
  std::unique_ptr<exp::TelemetryLog> telemetry;
  if (!eff.metrics_out.empty()) {
    telemetry = std::make_unique<exp::TelemetryLog>(eff.metrics_out);
  }
  exp::ResultStore store(o.store_file);
  exp::SweepOptions opts;
  opts.workers = o.workers;
  opts.timeout_s = o.timeout_s;
  opts.retries = o.retries;
  opts.resume = o.resume;
  opts.progress_interval_s = o.progress_s;
  opts.progress = &std::cerr;
  opts.telemetry = telemetry.get();
  exp::SweepScheduler scheduler(opts);
  const auto report = scheduler.run(spec, &store);
  if (telemetry != nullptr) telemetry->append(exp::metrics_record());
  const int obs_rc = obs_finish_trace(eff);
  if (report.failed != 0 || report.timed_out != 0) return kExitRuntime;
  return obs_rc;
}

int cmd_jobs_status(const CliOptions& o) {
  const auto spec = load_spec_or_die(o);
  if (o.store_file.empty() && o.run_dir.empty()) {
    std::cerr << "jobs status requires --store FILE or --run-dir DIR\n";
    usage(kExitUsage);
  }
  std::size_t skipped_lines = 0;
  std::vector<exp::JobRecord> records;
  if (!o.run_dir.empty()) {
    // Fleet run: fold every per-worker store, and show the live leases.
    const auto paths = exp::FleetPaths::at(o.run_dir);
    for (const std::string& p : exp::list_worker_stores(paths)) {
      std::size_t skipped = 0;
      auto part = exp::ResultStore::load(p, &skipped);
      skipped_lines += skipped;
      records.insert(records.end(), part.begin(), part.end());
    }
    for (const auto& lease : exp::LeaseDir(paths.leases).list()) {
      std::cout << "lease " << lease.shard << " held by " << lease.worker
                << " (" << lease.beats << " heartbeat(s))\n";
    }
  } else {
    records = exp::ResultStore::load(o.store_file, &skipped_lines);
  }
  const auto latest = exp::ResultStore::latest_by_job(records, spec.hash());
  std::size_t ok = 0, failed = 0, timed_out = 0;
  for (const auto& [id, r] : latest) {
    if (r.status == "ok") ++ok;
    else if (r.status == "timeout") ++timed_out;
    else ++failed;
  }
  const std::size_t total = spec.num_jobs();
  std::cout << "spec " << o.spec_file << " (name '" << spec.name << "', hash "
            << spec.hash() << "): " << total << " jobs\n"
            << "  ok:        " << ok << "\n"
            << "  failed:    " << failed << "\n"
            << "  timeout:   " << timed_out << "\n"
            << "  remaining: " << (total - ok) << "\n";
  if (skipped_lines > 0) {
    std::cout << "  (skipped " << skipped_lines
              << " malformed store line(s) — truncated write?)\n";
  }
  return kExitOk;
}

int cmd_jobs_merge(const CliOptions& o) {
  if (o.store_file.empty() && o.run_dir.empty()) {
    std::cerr << "jobs merge requires --store FILE or --run-dir DIR\n";
    usage(kExitUsage);
  }
  if (!o.run_dir.empty()) {
    // Fleet run: dedup across all per-worker stores with bitwise
    // reconciliation of re-executed jobs.
    const auto paths = exp::FleetPaths::at(o.run_dir);
    const auto spec = load_spec_or_die(o);
    const std::uint64_t hash = spec.hash();
    const auto merge = exp::merge_stores(exp::list_worker_stores(paths), &hash);
    print_merged(merge.records, o.csv);
    std::cerr << "merged " << merge.records.size() << " job record(s) from "
              << merge.inputs << " input record(s) (" << merge.duplicates
              << " duplicate(s), " << merge.reexecuted_ok << " re-executed, "
              << merge.skipped_lines << " torn line(s) healed)\n";
    if (merge.reconcile_mismatches != 0) {
      std::cerr << "error: " << merge.reconcile_mismatches
                << " re-executed job(s) disagreed bitwise — the sweep is not "
                   "deterministic\n";
      return kExitDivergence;
    }
    return kExitOk;
  }
  const auto records = exp::ResultStore::load(o.store_file);
  std::vector<exp::JobRecord> merged;
  if (!o.spec_file.empty()) {
    const auto spec = load_spec_or_die(o);
    const auto latest = exp::ResultStore::latest_by_job(records, spec.hash());
    for (std::size_t id = 0; id < spec.num_jobs(); ++id) {
      const auto it = latest.find(id);
      if (it != latest.end()) merged.push_back(it->second);
    }
  } else {
    // No spec: merge every (spec_hash, job_id) group in the store.
    std::unordered_map<std::string, std::size_t> index;
    for (const auto& r : records) {
      const std::string key = std::to_string(r.spec_hash) + ":" +
                              std::to_string(r.job_id);
      const auto it = index.find(key);
      if (it == index.end()) {
        index.emplace(key, merged.size());
        merged.push_back(r);
      } else {
        merged[it->second] = r;
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const exp::JobRecord& a, const exp::JobRecord& b) {
                return a.spec_hash != b.spec_hash ? a.spec_hash < b.spec_hash
                                                  : a.job_id < b.job_id;
              });
  }
  print_merged(merged, o.csv);
  std::cerr << "merged " << merged.size() << " job record(s)\n";
  return kExitOk;
}

int cmd_jobs(const CliOptions& o) {
  if (o.subcommand == "run") return cmd_jobs_run(o);
  if (o.subcommand == "status") return cmd_jobs_status(o);
  if (o.subcommand == "merge") return cmd_jobs_merge(o);
  std::cerr << "jobs needs a subcommand: run | status | merge\n";
  usage(kExitUsage);
}

// worker --run-dir DIR — one fleet worker process. Normally spawned by the
// coordinator, but equally attachable by hand (or from another host against
// a shared filesystem) to an in-progress run. Failures to even start — no
// usable run directory, no spec within the idle budget — exit with the
// dedicated worker code so the coordinator's waitpid can tell "bad setup"
// from "crashed mid-shard".
int cmd_worker(const CliOptions& o) {
  if (o.run_dir.empty()) {
    std::cerr << "worker requires --run-dir DIR\n";
    usage(kExitUsage);
  }
  exp::WorkerOptions wo;
  wo.run_dir = o.run_dir;
  wo.worker_id = o.worker_id;
  wo.ttl_s = o.ttl_s;
  wo.max_idle_s = o.max_idle_s;
  wo.timeout_s = o.timeout_s;
  wo.retries = o.retries;
  wo.log = &std::cerr;
  try {
    // Failed jobs are the *coordinator's* problem (they are recorded and
    // merged); the worker itself exits clean so it is not restarted into
    // the same deterministic failures.
    (void)exp::run_fleet_worker(wo);
    return kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "worker: " << e.what() << "\n";
    return kExitWorker;
  }
}

// ---------------------------------------------------------------------------
// serve / client — the svc:: what-if service.

// serve --socket PATH: load the topology + deployment state once, warm the
// incremental engine, then answer NDJSON requests until SIGTERM/SIGINT or an
// in-band shutdown (both drain and exit 0). Transport setup failures exit 6;
// a --check-topo-delta lockstep divergence exits 3 via main's handler.
int cmd_serve(const CliOptions& o) {
  if (o.socket_path.empty()) {
    std::cerr << "serve requires --socket PATH\n";
    usage(kExitUsage);
  }
  auto net = load_internet(o);
  const auto adopters = resolve_adopters(net, o.adopters, o.seed);
  // The service's own request counters/latency histograms should work out of
  // the box ({"op":"metrics"} reads them), not only under --obs-summary.
  obs::set_metrics_enabled(true);
  obs_start(o);

  svc::SessionConfig scfg;
  scfg.sim = sim_config(o);
  scfg.check_topo_delta = o.check_topo_delta;
  scfg.topo_row_budget = o.topo_row_budget;
  std::unique_ptr<exp::TelemetryLog> telemetry;
  if (!o.metrics_out.empty()) {
    telemetry = std::make_unique<exp::TelemetryLog>(o.metrics_out);
  }
  scfg.telemetry = telemetry.get();

  auto graph = std::make_unique<topo::AsGraph>(std::move(net.graph));
  auto state = core::DeploymentState::initial(*graph, adopters);
  svc::Session session(std::move(graph), std::move(state), scfg);
  std::cerr << "sbgpsim serve: " << session.graph().num_nodes() << " ASes, "
            << session.state().num_secure() << " secure; warming engine...\n";
  session.warm();
  try {
    svc::Server server(session, {.socket_path = o.socket_path});
    std::cerr << "sbgpsim serve: listening on " << o.socket_path
              << (o.check_topo_delta ? " (lockstep topo-delta checking on)"
                                     : "")
              << "\n";
    const int rc = server.run();
    std::cerr << "sbgpsim serve: drained " << session.requests_served()
              << " request(s), clean shutdown\n";
    return rc;
  } catch (const core::IncrementalDivergence&) {
    throw;  // main maps it to exit 3
  } catch (const std::exception& e) {
    std::cerr << "serve: " << e.what() << "\n";
    return kExitService;
  }
}

// client --socket PATH [REQUEST...]: sends each positional (or each stdin
// line) as one request line and echoes the reply line to stdout. Exit 6 on
// any transport failure, 0 otherwise — protocol-level errors are the
// caller's to inspect in the {"ok":false,...} reply.
int cmd_client(const CliOptions& o) {
  if (o.socket_path.empty()) {
    std::cerr << "client requires --socket PATH\n";
    usage(kExitUsage);
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (o.socket_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "client: socket path too long\n";
    return kExitService;
  }
  std::memcpy(addr.sun_path, o.socket_path.c_str(), o.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) < 0) {
    std::cerr << "client: cannot connect to '" << o.socket_path
              << "': " << std::strerror(errno) << "\n";
    if (fd >= 0) ::close(fd);
    return kExitService;
  }

  auto roundtrip = [&](const std::string& request) -> bool {
    std::string out = request;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    std::string reply;
    char ch;
    while (true) {
      const ssize_t n = ::recv(fd, &ch, 1, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;  // server died before answering
      if (ch == '\n') break;
      reply.push_back(ch);
    }
    std::cout << reply << "\n";
    return true;
  };

  bool ok = true;
  if (!o.positionals.empty()) {
    for (const std::string& req : o.positionals) {
      if (!roundtrip(req)) {
        ok = false;
        break;
      }
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      if (!roundtrip(line)) {
        ok = false;
        break;
      }
    }
  }
  ::close(fd);
  if (!ok) {
    std::cerr << "client: connection to '" << o.socket_path << "' lost\n";
    return kExitService;
  }
  return kExitOk;
}

// validate [--scenario FILE]... FILE... — every positional file must parse
// through exp::Json, either as one JSON document (e.g. a Chrome trace) or
// as JSONL (result store, telemetry log: every non-empty line a document);
// --scenario files are additionally checked against the ScenarioSpec schema
// (unknown keys, out-of-range values), with the field path in the
// diagnostic. Used by run_tier1.sh to gate the observability outputs; exits
// 2 on a malformed scenario spec, 4 on the first malformed generic file.
int cmd_validate(const CliOptions& o) {
  if (o.positionals.empty() && o.scenario_files.empty()) {
    std::cerr << "validate requires at least one FILE or --scenario FILE\n";
    usage(kExitUsage);
  }
  for (const std::string& path : o.scenario_files) {
    try {
      const auto sspec = scenario::ScenarioSpec::from_file(path);
      std::cerr << path << ": ok (scenario spec, " << sspec.num_points()
                << " point(s))\n";
    } catch (const exp::JsonError& e) {
      // Schema violations carry a field path ("scenario.attacks[1]: …");
      // they are spec-authoring errors, hence the usage exit code.
      std::cerr << "validate: " << path << ": " << e.what() << "\n";
      return kExitUsage;
    }
  }
  for (const std::string& path : o.positionals) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "validate: cannot open '" << path << "'\n";
      return kExitRuntime;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    bool whole_ok = true;
    try {
      (void)exp::Json::parse(text);
    } catch (const exp::JsonError&) {
      whole_ok = false;
    }
    if (whole_ok) {
      std::cerr << path << ": ok (json)\n";
      continue;
    }
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0, records = 0;
    bool line_ok = true;
    while (std::getline(lines, line)) {
      ++lineno;
      if (line.empty()) continue;
      try {
        (void)exp::Json::parse(line);
        ++records;
      } catch (const exp::JsonError& e) {
        std::cerr << "validate: " << path << ":" << lineno << ": " << e.what()
                  << "\n";
        line_ok = false;
        break;
      }
    }
    if (!line_ok) return kExitRuntime;
    if (records == 0) {
      std::cerr << "validate: " << path << ": no JSON records\n";
      return kExitRuntime;
    }
    std::cerr << path << ": ok (jsonl, " << records << " record(s))\n";
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);
  try {
    if (o.command == "generate") return cmd_generate(o);
    if (o.command == "simulate") return cmd_simulate(o);
    if (o.command == "sweep") return cmd_sweep(o);
    if (o.command == "analyze") return cmd_analyze(o);
    if (o.command == "jobs") return cmd_jobs(o);
    if (o.command == "worker") return cmd_worker(o);
    if (o.command == "scenario") return cmd_scenario(o);
    if (o.command == "validate") return cmd_validate(o);
    if (o.command == "serve") return cmd_serve(o);
    if (o.command == "client") return cmd_client(o);
  } catch (const core::IncrementalDivergence& e) {
    // --check-incremental tripped: always an engine bug, never bad input.
    std::cerr << "FATAL: " << e.what() << "\n";
    return kExitDivergence;
  } catch (const std::exception& e) {
    // Unreadable graph/store/telemetry files, allocation failure, … — a
    // runtime failure, distinct from argument errors (2).
    std::cerr << "error: " << e.what() << "\n";
    return kExitRuntime;
  }
  usage(kExitUsage);
}
