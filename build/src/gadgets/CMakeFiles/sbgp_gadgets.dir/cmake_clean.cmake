file(REMOVE_RECURSE
  "CMakeFiles/sbgp_gadgets.dir/gadgets.cpp.o"
  "CMakeFiles/sbgp_gadgets.dir/gadgets.cpp.o.d"
  "CMakeFiles/sbgp_gadgets.dir/turing.cpp.o"
  "CMakeFiles/sbgp_gadgets.dir/turing.cpp.o.d"
  "libsbgp_gadgets.a"
  "libsbgp_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbgp_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
