file(REMOVE_RECURSE
  "CMakeFiles/sbgp_core.dir/analysis.cpp.o"
  "CMakeFiles/sbgp_core.dir/analysis.cpp.o.d"
  "CMakeFiles/sbgp_core.dir/deployment_state.cpp.o"
  "CMakeFiles/sbgp_core.dir/deployment_state.cpp.o.d"
  "CMakeFiles/sbgp_core.dir/early_adopters.cpp.o"
  "CMakeFiles/sbgp_core.dir/early_adopters.cpp.o.d"
  "CMakeFiles/sbgp_core.dir/evolution.cpp.o"
  "CMakeFiles/sbgp_core.dir/evolution.cpp.o.d"
  "CMakeFiles/sbgp_core.dir/resilience.cpp.o"
  "CMakeFiles/sbgp_core.dir/resilience.cpp.o.d"
  "CMakeFiles/sbgp_core.dir/simulator.cpp.o"
  "CMakeFiles/sbgp_core.dir/simulator.cpp.o.d"
  "libsbgp_core.a"
  "libsbgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
