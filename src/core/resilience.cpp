#include "core/resilience.h"

#include "scenario/engine.h"
#include "scenario/scenario_spec.h"

namespace sbgp::core {

namespace {

scenario::Scenario legacy_hijack_scenario(std::size_t samples,
                                          std::uint64_t seed) {
  scenario::Scenario s;
  s.attack = scenario::AttackKind::OriginHijack;
  s.policy = scenario::DefensePolicy::SecureTiebreak;
  s.placement = scenario::Placement::UniformRandom;
  s.samples = samples;
  s.seed = seed;
  return s;
}

scenario::EngineConfig engine_config(const SimConfig& cfg) {
  scenario::EngineConfig ecfg;
  ecfg.tiebreak = cfg.tiebreak;
  ecfg.stub_breaks_ties = cfg.stub_breaks_ties;
  return ecfg;
}

}  // namespace

ResilienceResult measure_resilience(const topo::AsGraph& graph,
                                    const std::vector<std::uint8_t>& secure,
                                    const SimConfig& cfg, std::size_t samples,
                                    std::uint64_t seed, par::ThreadPool& pool) {
  // Delegates to the scenario engine: a uniform-placement origin hijack
  // under the paper's security-third ranking. The engine reproduces the
  // historical sampling stream draw-for-draw (attacker == victim pairs are
  // redrawn, so the victim is never its own impostor) and folds per-pair
  // impacts in sample-index order — deterministic for any pool size.
  const scenario::ScenarioEngine engine(graph, engine_config(cfg));
  const scenario::ScenarioResult r =
      engine.run(legacy_hijack_scenario(samples, seed), secure, pool);
  ResilienceResult result;
  result.pairs = r.pairs;
  result.fooled_fraction = r.fooled_fraction;
  result.fooled_weight = r.fooled_weight;
  return result;
}

double hijack_impact(const topo::AsGraph& graph,
                     const std::vector<std::uint8_t>& secure, const SimConfig& cfg,
                     topo::AsId attacker, topo::AsId victim) {
  const scenario::ScenarioEngine engine(graph, engine_config(cfg));
  return engine
      .probe(legacy_hijack_scenario(1, 0), secure, attacker, victim)
      .fooled_fraction;
}

}  // namespace sbgp::core
