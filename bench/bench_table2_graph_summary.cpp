// Table 2: summary of the AS graphs — ASes, peering edges, customer-provider
// edges — for the base (Cyclops+IXP analogue) and the Appendix D augmented
// graph.
#include "bench_common.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 2 - AS graph summary", opt);

  topo::InternetConfig cfg;
  cfg.total_ases = opt.nodes;
  cfg.seed = opt.seed;
  const auto net = topo::generate_internet(cfg);
  std::size_t added = 0;
  const auto aug = topo::augment_cp_peering(net, 0.8, opt.seed + 1, &added);

  stats::Table t({"graph", "ASes", "peering", "customer-provider", "stubs",
                  "ISPs", "CPs"});
  auto row = [&](const std::string& name, const topo::AsGraph& g) {
    t.begin_row();
    t.add(name);
    t.add(g.num_nodes());
    t.add(g.num_peer_edges());
    t.add(g.num_customer_provider_edges());
    t.add(g.num_stubs());
    t.add(g.num_isps());
    t.add(g.num_content_providers());
  };
  row("base (Cyclops+IXP analogue)", net.graph);
  row("augmented (CP peering, App. D)", aug.graph);
  t.print(std::cout);
  std::cout << "\naugmentation added " << added << " CP peering edges ("
            << static_cast<double>(added) / static_cast<double>(opt.nodes)
            << " per AS; paper added 19.7K to 36K ASes = 0.53 per AS)\n";
  bench::print_paper_note(
      "Cyclops+IXP: 36,964 ASes, 38,829 peering, 72,848 customer-provider; "
      "augmented: 77,380 peering (same customer-provider).");
  return 0;
}
