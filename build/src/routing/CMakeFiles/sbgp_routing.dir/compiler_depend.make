# Empty compiler generated dependencies file for sbgp_routing.
# This may be replaced when dependencies are built.
