// Minimal JSON value model + parser/serialiser for the exp:: subsystem
// (declarative job specs and the JSONL result store). Deliberately tiny and
// dependency-free; two properties matter here and are guaranteed:
//   1. canonical output — objects preserve insertion order and numbers are
//      rendered shortest-round-trip, so identical values serialise to
//      identical bytes (the spec hash and resume logic depend on this);
//   2. robust input — `Json::parse` throws JsonError on any malformed text,
//      which the result-store loader uses to skip a half-written trailing
//      line after a killed sweep.
// Integers are exact up to 2^53 (numbers are stored as doubles).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sbgp::exp {

/// Thrown by `Json::parse` (and the typed accessors) on malformed input.
struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() = default;  ///< null
  static Json boolean(bool v);
  static Json number(double v);
  static Json number(std::uint64_t v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }

  /// Typed accessors; throw JsonError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;  ///< rejects negatives/fractions
  [[nodiscard]] const std::string& as_string() const;

  /// Array access.
  void push(Json v);
  [[nodiscard]] const std::vector<Json>& items() const;

  /// Object access. `set` appends (insertion order is preserved in output);
  /// `find` returns nullptr when the key is absent.
  void set(std::string key, Json v);
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialises to compact canonical JSON (no whitespace).
  [[nodiscard]] std::string dump() const;

  /// Parses `text`; throws JsonError unless the whole input is one value
  /// (surrounding whitespace allowed).
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Shortest round-trip decimal rendering of `v` (also used for canonical job
/// keys: "0.05" stays "0.05", never "0.050000000000000003").
[[nodiscard]] std::string format_double(double v);

/// FNV-1a 64-bit hash; stable across platforms, used for spec hashes.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace sbgp::exp
