
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_early_adopters.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_early_adopters.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_early_adopters.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_engine_crosscheck.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_engine_crosscheck.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_engine_crosscheck.cpp.o.d"
  "/root/repo/tests/test_evolution.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_evolution.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_evolution.cpp.o.d"
  "/root/repo/tests/test_gadgets.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_gadgets.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_gadgets.cpp.o.d"
  "/root/repo/tests/test_graph_stats.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_graph_stats.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_graph_stats.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_per_link.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_per_link.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_per_link.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_proto.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_proto.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_proto.cpp.o.d"
  "/root/repo/tests/test_proto_engine.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_proto_engine.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_proto_engine.cpp.o.d"
  "/root/repo/tests/test_proto_negative.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_proto_negative.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_proto_negative.cpp.o.d"
  "/root/repo/tests/test_reference_router.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_reference_router.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_reference_router.cpp.o.d"
  "/root/repo/tests/test_resilience.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_resilience.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_resilience.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_turing.cpp" "tests/CMakeFiles/sbgp_tests.dir/test_turing.cpp.o" "gcc" "tests/CMakeFiles/sbgp_tests.dir/test_turing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sbgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gadgets/CMakeFiles/sbgp_gadgets.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/sbgp_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/sbgp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/sbgp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/sbgp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sbgp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
