#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace sbgp::obs {

namespace detail {

#ifndef SBGPSIM_OBS_DISABLED
std::atomic<bool> g_metrics_enabled{false};
#endif
std::atomic<ShardIndexFn> g_shard_provider{nullptr};

std::size_t fallback_thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
// JSON has no inf/nan; clamp instead of emitting an unparsable token.
void write_json_double(std::ostream& os, double v) {
  if (v != v || v > 1e308 || v < -1e308) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}
}  // namespace

}  // namespace detail

#ifndef SBGPSIM_OBS_DISABLED
void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}
#endif

void set_shard_index_provider(ShardIndexFn fn) {
  detail::g_shard_provider.store(fn, std::memory_order_release);
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch)
          .count());
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

std::size_t LatencyHistogram::bucket_of(std::uint64_t ns) {
  if (ns == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(ns)) - 1;
  return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t LatencyHistogram::bucket_upper_ns(std::size_t i) {
  if (i + 1 >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << (i + 1)) - 1;
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHistogram::sum_ns() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::mean_ns() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum_ns()) / static_cast<double>(n);
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::bucket_counts() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const {
  const auto buckets = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > target || (seen == total && seen >= target)) {
      return bucket_upper_ns(i);
    }
  }
  return bucket_upper_ns(kBuckets - 1);
}

void LatencyHistogram::reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& Registry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void Registry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::write_json(std::ostream& os) const {
  std::scoped_lock lock(mutex_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << detail::json_escape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << detail::json_escape(name) << "\":";
    detail::write_json_double(os, g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << detail::json_escape(name) << "\":{";
    os << "\"count\":" << h->count();
    os << ",\"sum_ns\":" << h->sum_ns();
    os << ",\"mean_ns\":";
    detail::write_json_double(os, h->mean_ns());
    os << ",\"p50_ns\":" << h->quantile_ns(0.50);
    os << ",\"p90_ns\":" << h->quantile_ns(0.90);
    os << ",\"p99_ns\":" << h->quantile_ns(0.99);
    // Sparse bucket dump: [[log2_lower, count], ...] for non-empty buckets.
    os << ",\"buckets\":[";
    const auto buckets = h->bucket_counts();
    bool bfirst = true;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      if (buckets[i] == 0) continue;
      if (!bfirst) os << ',';
      bfirst = false;
      os << '[' << i << ',' << buckets[i] << ']';
    }
    os << "]}";
  }
  os << "}}";
}

std::string Registry::to_json_string() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace sbgp::obs
