// Deterministic unit tests for the fleet's lease state machine and the pure
// shard/merge helpers. Nothing here sleeps and nothing reads a real clock:
// every claim → heartbeat → expire → reap → re-claim transition is driven by
// an injectable fake clock, so the tests assert exact TTL edge behaviour
// (expiry is strict ">"), double-claim arbitration, and the steal/reconcile
// invariants without any timing assumptions.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "exp/fleet.h"
#include "exp/lease.h"
#include "exp/result_store.h"

namespace sbgp::exp {
namespace {

namespace fs = std::filesystem;

// Fresh per-test directory under gtest's temp root.
std::string temp_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

// Shared mutable fake time. LeaseDir copies the NowFn, so tests hold the
// state in a shared_ptr and advance it from outside.
struct FakeClock {
  std::shared_ptr<double> t = std::make_shared<double>(1000.0);
  NowFn fn() const {
    auto p = t;
    return [p] { return *p; };
  }
  void advance(double s) { *t += s; }
};

TEST(Lease, ClaimHeartbeatReleaseLifecycle) {
  const std::string dir = temp_dir("lease_lifecycle");
  FakeClock clock;
  LeaseDir leases(dir, clock.fn());

  EXPECT_FALSE(leases.held("shard-000"));
  EXPECT_FALSE(leases.read("shard-000").has_value());

  ASSERT_TRUE(leases.try_claim("shard-000", "w0"));
  EXPECT_TRUE(leases.held("shard-000"));
  auto info = leases.read("shard-000");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->shard, "shard-000");
  EXPECT_EQ(info->worker, "w0");
  EXPECT_DOUBLE_EQ(info->claimed_s, 1000.0);
  EXPECT_DOUBLE_EQ(info->beat_s, 1000.0);
  EXPECT_EQ(info->beats, 0u);

  clock.advance(2.5);
  ASSERT_TRUE(leases.heartbeat("shard-000", "w0"));
  info = leases.read("shard-000");
  ASSERT_TRUE(info.has_value());
  EXPECT_DOUBLE_EQ(info->claimed_s, 1000.0);  // claim time never moves
  EXPECT_DOUBLE_EQ(info->beat_s, 1002.5);
  EXPECT_EQ(info->beats, 1u);

  leases.release("shard-000", "w0");
  EXPECT_FALSE(leases.held("shard-000"));
  // Released shard is claimable again.
  EXPECT_TRUE(leases.try_claim("shard-000", "w1"));
}

TEST(Lease, SecondClaimLosesWhileHeld) {
  const std::string dir = temp_dir("lease_excl");
  FakeClock clock;
  LeaseDir leases(dir, clock.fn());

  ASSERT_TRUE(leases.try_claim("s", "w0"));
  EXPECT_FALSE(leases.try_claim("s", "w1"));
  EXPECT_FALSE(leases.try_claim("s", "w0"));  // not even re-entrantly
  // The loser's attempt must not have damaged the winner's lease.
  const auto info = leases.read("s");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->worker, "w0");
}

TEST(Lease, ConcurrentClaimHasExactlyOneWinner) {
  const std::string dir = temp_dir("lease_race");
  FakeClock clock;
  constexpr int kContenders = 16;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kContenders);
  for (int i = 0; i < kContenders; ++i) {
    threads.emplace_back([&, i] {
      // Each contender uses its own LeaseDir, as separate processes would.
      LeaseDir leases(dir, clock.fn());
      if (leases.try_claim("contested", "w" + std::to_string(i))) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
  // No temp droppings left behind in the directory.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().extension(), ".lease") << e.path();
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(Lease, ExpiryIsDrivenByEmbeddedTimestampNotMtime) {
  const std::string dir = temp_dir("lease_expiry");
  FakeClock clock;
  LeaseDir leases(dir, clock.fn());
  ASSERT_TRUE(leases.try_claim("s", "w0"));

  // Heartbeat at t+8 keeps the lease alive at t+10 under ttl=10 even though
  // wall-clock mtime says the file is brand new or ancient — prove the
  // decision ignores mtime by backdating it to the epoch.
  clock.advance(8.0);
  ASSERT_TRUE(leases.heartbeat("s", "w0"));
  const struct ::timespec times[2] = {{0, 0}, {0, 0}};
  ::utimensat(AT_FDCWD, (dir + "/s.lease").c_str(), times, 0);

  clock.advance(2.0);  // now - beat = 2 <= ttl
  EXPECT_FALSE(leases.read("s")->expired(leases.now_s(), 10.0));
  EXPECT_FALSE(leases.reap_if_expired("s", 10.0));
  EXPECT_TRUE(leases.held("s"));

  // Exactly at the TTL edge the lease is still alive (strict ">").
  clock.advance(8.0);  // now - beat = 10
  EXPECT_FALSE(leases.read("s")->expired(leases.now_s(), 10.0));
  EXPECT_FALSE(leases.reap_if_expired("s", 10.0));

  // One tick past and it is reapable.
  clock.advance(0.001);
  EXPECT_TRUE(leases.read("s")->expired(leases.now_s(), 10.0));
  EXPECT_TRUE(leases.reap_if_expired("s", 10.0));
  EXPECT_FALSE(leases.held("s"));
  EXPECT_FALSE(leases.reap_if_expired("s", 10.0));  // idempotent
}

TEST(Lease, ReapedHolderCannotHeartbeatOrReleaseTheNewClaim) {
  const std::string dir = temp_dir("lease_fence");
  FakeClock clock;
  LeaseDir leases(dir, clock.fn());

  ASSERT_TRUE(leases.try_claim("s", "w0"));
  clock.advance(11.0);
  ASSERT_TRUE(leases.reap_if_expired("s", 10.0));
  ASSERT_TRUE(leases.try_claim("s", "w1"));

  // The zombie's heartbeat reports the loss instead of clobbering w1.
  EXPECT_FALSE(leases.heartbeat("s", "w0"));
  auto info = leases.read("s");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->worker, "w1");

  // And the zombie's release is a no-op — w1 still holds the shard.
  leases.release("s", "w0");
  EXPECT_TRUE(leases.held("s"));
  EXPECT_EQ(leases.read("s")->worker, "w1");

  // force_release (coordinator cleanup) removes it unconditionally.
  leases.force_release("s");
  EXPECT_FALSE(leases.held("s"));
}

TEST(Lease, ListReturnsSortedDecodableLeases) {
  const std::string dir = temp_dir("lease_list");
  FakeClock clock;
  LeaseDir leases(dir, clock.fn());
  ASSERT_TRUE(leases.try_claim("b", "w1"));
  ASSERT_TRUE(leases.try_claim("a", "w0"));
  ASSERT_TRUE(leases.try_claim("c", "w2"));
  const auto all = leases.list();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].shard, "a");
  EXPECT_EQ(all[1].shard, "b");
  EXPECT_EQ(all[2].shard, "c");
}

TEST(Lease, JsonRoundTripAndTornFilesReadAsAbsent) {
  LeaseInfo info;
  info.shard = "shard-007";
  info.worker = "w3";
  info.claimed_s = 123.5;
  info.beat_s = 130.25;
  info.beats = 9;
  const LeaseInfo back = LeaseInfo::from_json(info.to_json());
  EXPECT_EQ(back.shard, info.shard);
  EXPECT_EQ(back.worker, info.worker);
  EXPECT_DOUBLE_EQ(back.claimed_s, info.claimed_s);
  EXPECT_DOUBLE_EQ(back.beat_s, info.beat_s);
  EXPECT_EQ(back.beats, info.beats);

  const std::string dir = temp_dir("lease_torn");
  LeaseDir leases(dir);
  // Externally damaged lease file: read() treats it as absent rather than
  // throwing into the supervision loop.
  std::ofstream(dir + "/x.lease") << "{\"shard\":\"x\",\"wor";
  EXPECT_FALSE(leases.read("x").has_value());
}

// ---------------------------------------------------------------------------
// Pure shard helpers.

TEST(Shards, MakeShardsCoversTheGridExactlyOnce) {
  const auto shards = make_shards(10, 3);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0].id, "shard-000");
  EXPECT_EQ(shards[3].id, "shard-003");
  std::vector<std::size_t> all;
  for (const auto& s : shards) {
    all.insert(all.end(), s.job_ids.begin(), s.job_ids.end());
  }
  ASSERT_EQ(all.size(), 10u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
  EXPECT_TRUE(make_shards(0, 3).empty());
  EXPECT_EQ(make_shards(5, 0).size(), 5u);  // shard_size 0 clamps to 1
}

TEST(Shards, SplitTakesTheTailHalfAndNamesByGeneration) {
  Shard victim;
  victim.id = "shard-002";
  victim.job_ids = {10, 11, 12, 13, 14, 15, 16};
  const std::unordered_set<std::size_t> recorded = {10, 11};
  const auto remaining = shard_remaining(victim, recorded);
  ASSERT_EQ(remaining, (std::vector<std::size_t>{12, 13, 14, 15, 16}));

  const Shard stolen = split_shard(victim, remaining, 1);
  EXPECT_EQ(stolen.id, "shard-002-s1");
  // floor(5/2) = 2 jobs from the tail; the victim keeps 12,13,14.
  EXPECT_EQ(stolen.job_ids, (std::vector<std::size_t>{15, 16}));

  // Two remaining jobs split 1/1.
  const Shard pair = split_shard(victim, {3, 4}, 2);
  EXPECT_EQ(pair.id, "shard-002-s2");
  EXPECT_EQ(pair.job_ids, (std::vector<std::size_t>{4}));

  EXPECT_THROW(split_shard(victim, {3}, 1), std::invalid_argument);
}

TEST(Shards, PublishIsDurableIdempotentAndImmutable) {
  const std::string root = temp_dir("shards_publish");
  const FleetPaths paths = FleetPaths::at(root);
  fs::create_directories(paths.shards);
  Shard s;
  s.id = "shard-000";
  s.job_ids = {0, 1, 2};
  publish_shard(paths, s);
  // Republishing (even with different content) leaves the original intact.
  Shard s2 = s;
  s2.job_ids = {99};
  publish_shard(paths, s2);
  const auto listed = list_shards(paths);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].job_ids, (std::vector<std::size_t>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Merge reconciliation (the steal-duplicate path).

JobRecord ok_record(std::uint64_t spec_hash, std::size_t id, double frac) {
  JobRecord r;
  r.spec_hash = spec_hash;
  r.job_id = id;
  r.job_key = "job-" + std::to_string(id);
  r.status = "ok";
  r.outcome = "converged";
  r.frac_ases = frac;
  return r;
}

std::string write_store(const std::string& path,
                        const std::vector<JobRecord>& records) {
  ResultStore store(path);
  for (const auto& r : records) store.append(r);
  return path;
}

TEST(MergeStores, DuplicatesFromAStolenShardReconcileBitwise) {
  const std::string dir = temp_dir("merge_dup");
  // w0 ran jobs 0,1; w1 stole and re-ran job 1 with the identical result —
  // the normal steal-of-a-still-alive-straggler outcome.
  const auto a = write_store(dir + "/w0.jsonl",
                             {ok_record(7, 0, 0.25), ok_record(7, 1, 0.5)});
  const auto b = write_store(dir + "/w1.jsonl", {ok_record(7, 1, 0.5)});
  const std::uint64_t hash = 7;
  const StoreMerge m = merge_stores({a, b}, &hash);
  ASSERT_EQ(m.records.size(), 2u);
  EXPECT_EQ(m.inputs, 3u);
  EXPECT_EQ(m.duplicates, 1u);
  EXPECT_EQ(m.reexecuted_ok, 1u);
  EXPECT_EQ(m.reconcile_mismatches, 0u);

  // A nondeterministic re-execution is *detected*, not silently merged.
  const auto c = write_store(dir + "/w2.jsonl", {ok_record(7, 0, 0.75)});
  const StoreMerge bad = merge_stores({a, b, c}, &hash);
  EXPECT_EQ(bad.reexecuted_ok, 2u);
  EXPECT_EQ(bad.reconcile_mismatches, 1u);
  // Read-order independence: the first "ok" wins regardless of input order.
  const StoreMerge rev = merge_stores({c, b, a}, &hash);
  ASSERT_EQ(rev.records.size(), 2u);
  EXPECT_EQ(rev.reconcile_mismatches, 1u);
}

TEST(MergeStores, OkBeatsFailureRegardlessOfOrder) {
  const std::string dir = temp_dir("merge_okwins");
  JobRecord fail = ok_record(7, 0, 0.0);
  fail.status = "failed";
  fail.error = "boom";
  const auto a = write_store(dir + "/w0.jsonl", {fail});
  const auto b = write_store(dir + "/w1.jsonl", {ok_record(7, 0, 0.25)});
  const std::uint64_t hash = 7;
  for (const auto& order :
       std::vector<std::vector<std::string>>{{a, b}, {b, a}}) {
    const StoreMerge m = merge_stores(order, &hash);
    ASSERT_EQ(m.records.size(), 1u);
    EXPECT_EQ(m.records[0].status, "ok");
    EXPECT_EQ(m.reexecuted_ok, 0u);
  }
}

TEST(MergeStores, FiltersBySpecHashAndSurvivesMissingFiles) {
  const std::string dir = temp_dir("merge_filter");
  const auto a = write_store(dir + "/w0.jsonl",
                             {ok_record(7, 0, 0.25), ok_record(8, 0, 0.9)});
  const std::uint64_t hash = 7;
  const StoreMerge m = merge_stores({a, dir + "/nope.jsonl"}, &hash);
  ASSERT_EQ(m.records.size(), 1u);
  EXPECT_EQ(m.records[0].spec_hash, 7u);
  // Unfiltered: both specs, sorted by (spec_hash, job_id).
  const StoreMerge all = merge_stores({a});
  ASSERT_EQ(all.records.size(), 2u);
  EXPECT_EQ(all.records[0].spec_hash, 7u);
  EXPECT_EQ(all.records[1].spec_hash, 8u);
}

}  // namespace
}  // namespace sbgp::exp
