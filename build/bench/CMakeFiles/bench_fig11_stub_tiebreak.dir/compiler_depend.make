# Empty compiler generated dependencies file for bench_fig11_stub_tiebreak.
# This may be replaced when dependencies are built.
