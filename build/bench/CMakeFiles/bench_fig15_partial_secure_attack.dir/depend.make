# Empty dependencies file for bench_fig15_partial_secure_attack.
# This may be replaced when dependencies are built.
