#include "proto/rpki.h"

#include <algorithm>

namespace sbgp::proto {

std::string Prefix::to_string() const {
  return std::to_string((addr >> 24) & 0xff) + "." + std::to_string((addr >> 16) & 0xff) +
         "." + std::to_string((addr >> 8) & 0xff) + "." + std::to_string(addr & 0xff) +
         "/" + std::to_string(len);
}

const char* to_string(RoaValidity v) {
  switch (v) {
    case RoaValidity::Valid: return "valid";
    case RoaValidity::Invalid: return "invalid";
    case RoaValidity::NotFound: return "not-found";
  }
  return "?";
}

Rpki::Rpki(std::uint64_t master_seed) : master_seed_(master_seed) {}

void Rpki::register_as(std::uint32_t asn) {
  keys_.try_emplace(asn, derive_keypair(asn, master_seed_));
}

bool Rpki::is_registered(std::uint32_t asn) const { return keys_.count(asn) != 0; }

std::optional<std::uint64_t> Rpki::public_key(std::uint32_t asn) const {
  const auto it = keys_.find(asn);
  if (it == keys_.end()) return std::nullopt;
  return it->second.public_key;
}

void Rpki::add_roa(std::uint32_t asn, Prefix prefix) {
  auto& origins = roas_[prefix.key()];
  if (std::find(origins.begin(), origins.end(), asn) == origins.end()) {
    origins.push_back(asn);
  }
}

RoaValidity Rpki::validate_origin(std::uint32_t origin, Prefix prefix) const {
  // A covering ROA exists and authorises `origin` -> Valid; a covering ROA
  // exists but none authorises `origin` -> Invalid; no covering ROA ->
  // NotFound. We only index exact prefixes plus their shorter covers.
  bool any_cover = false;
  for (const auto& [key, origins] : roas_) {
    const Prefix roa{static_cast<std::uint32_t>(key >> 8),
                     static_cast<std::uint8_t>(key & 0xff)};
    if (!roa.covers(prefix)) continue;
    any_cover = true;
    if (std::find(origins.begin(), origins.end(), origin) != origins.end()) {
      return RoaValidity::Valid;
    }
  }
  return any_cover ? RoaValidity::Invalid : RoaValidity::NotFound;
}

std::optional<Signature> Rpki::sign_as(std::uint32_t asn, Digest digest) const {
  const auto it = keys_.find(asn);
  if (it == keys_.end()) return std::nullopt;
  return sign(it->second.private_key, digest);
}

bool Rpki::verify(std::uint32_t asn, Digest digest, Signature sig) const {
  const auto it = keys_.find(asn);
  if (it == keys_.end()) return false;
  return verify_with_private(it->second.private_key, digest, sig);
}

std::size_t Rpki::num_roas() const {
  std::size_t count = 0;
  for (const auto& [key, origins] : roas_) count += origins.size();
  return count;
}

}  // namespace sbgp::proto
