// svc:: — protocol (Session) and transport (Server) tests. Session tests
// drive the JSON dispatch directly, no socket involved; Server tests stand
// up the real Unix-socket poll loop in a thread and talk to it with raw
// blocking sockets, including the SIGTERM drain path the daemon relies on.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/deployment_state.h"
#include "exp/json.h"
#include "svc/server.h"
#include "svc/session.h"
#include "test_util.h"

namespace sbgp {
namespace {

using exp::Json;
using topo::AsId;

std::unique_ptr<svc::Session> make_session(bool check_topo_delta = false) {
  topo::Internet net = test::small_internet(160, 7);
  std::vector<AsId> adopters;
  if (!net.cps.empty()) adopters.push_back(net.cps[0]);
  if (!net.tier1.empty()) adopters.push_back(net.tier1[0]);
  auto state = core::DeploymentState::initial(net.graph, adopters);
  svc::SessionConfig cfg;
  cfg.sim.threads = 1;
  cfg.check_topo_delta = check_topo_delta;
  auto graph = std::make_unique<topo::AsGraph>(std::move(net.graph));
  return std::make_unique<svc::Session>(std::move(graph), std::move(state),
                                        std::move(cfg));
}

Json ask(svc::Session& s, const std::string& request) {
  return s.handle(Json::parse(request));
}

bool reply_ok(const Json& j) {
  const Json* ok = j.find("ok");
  return ok != nullptr && ok->as_bool();
}

/// First insecure non-stub AS of the wanted class, by external ASN.
std::uint32_t find_insecure_isp_asn(const svc::Session& s) {
  const topo::AsGraph& g = s.graph();
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_isp(n) && !s.state().is_secure(n)) return g.asn(n);
  }
  ADD_FAILURE() << "no insecure ISP in fixture";
  return 0;
}

/// An insecure stub (the adopters' stubs are simplex-secure, which would
/// shadow the "stubs don't decide" error with "already secure").
std::uint32_t find_stub_asn(const svc::Session& s) {
  const topo::AsGraph& g = s.graph();
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_stub(n) && !s.state().is_secure(n)) return g.asn(n);
  }
  ADD_FAILURE() << "no insecure stub in fixture";
  return 0;
}

TEST(SvcSession, QueryStateReportsGraphAndConfig) {
  auto s = make_session();
  const Json j = ask(*s, R"({"op":"query_state"})");
  ASSERT_TRUE(reply_ok(j)) << j.dump();
  EXPECT_EQ(j.find("nodes")->as_u64(), s->graph().num_nodes());
  EXPECT_EQ(j.find("stubs")->as_u64() + j.find("isps")->as_u64() +
                j.find("content_providers")->as_u64(),
            s->graph().num_nodes());
  EXPECT_GT(j.find("secure_ases")->as_u64(), 0u);  // adopters + their stubs
  EXPECT_EQ(j.find("model")->as_string(), "outgoing");
  EXPECT_FALSE(j.find("version")->as_string().empty());
  EXPECT_EQ(j.find("requests")->as_u64(), 1u);
}

TEST(SvcSession, WhatifAdoptIsConsistentWithItself) {
  auto s = make_session();
  const std::uint32_t asn = find_insecure_isp_asn(*s);
  const Json j =
      ask(*s, R"({"op":"whatif_adopt","asn":)" + std::to_string(asn) + "}");
  ASSERT_TRUE(reply_ok(j)) << j.dump();
  EXPECT_EQ(j.find("asn")->as_u64(), asn);
  EXPECT_EQ(j.find("class")->as_string(), "isp");
  EXPECT_FALSE(j.find("secure")->as_bool());
  const double utility = j.find("utility")->as_double();
  const double projected = j.find("projected")->as_double();
  EXPECT_NEAR(j.find("delta")->as_double(), projected - utility, 1e-12);
  EXPECT_DOUBLE_EQ(j.find("theta")->as_double(), 0.05);
  // A what-if must not change the session's state.
  const Json q = ask(*s, R"({"op":"query_state"})");
  EXPECT_EQ(q.find("secure_ases")->as_u64(),
            static_cast<std::uint64_t>(s->state().num_secure()));
}

TEST(SvcSession, WhatifAbandonUnderOutgoingIsUnevaluated) {
  // Thm 6.2: in the Outgoing model turning off is never beneficial; the
  // engine skips the projection and the service reports evaluated:false
  // with a zero delta rather than inventing a number.
  auto s = make_session();
  const topo::AsGraph& g = s->graph();
  std::uint32_t secure_isp = 0;
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_isp(n) && s->state().is_secure(n)) {
      secure_isp = g.asn(n);
      break;
    }
  }
  ASSERT_NE(secure_isp, 0u);
  const Json j = ask(
      *s, R"({"op":"whatif_abandon","asn":)" + std::to_string(secure_isp) + "}");
  ASSERT_TRUE(reply_ok(j)) << j.dump();
  EXPECT_FALSE(j.find("evaluated")->as_bool());
  EXPECT_DOUBLE_EQ(j.find("delta")->as_double(), 0.0);
  EXPECT_FALSE(j.find("would_flip")->as_bool());
}

TEST(SvcSession, UserErrorsNeverThrowOutOfHandle) {
  auto s = make_session();
  // Unknown AS.
  Json j = ask(*s, R"({"op":"whatif_adopt","asn":4099999})");
  EXPECT_FALSE(reply_ok(j));
  // Stubs don't make independent adoption decisions.
  j = ask(*s, R"({"op":"whatif_adopt","asn":)" +
                  std::to_string(find_stub_asn(*s)) + "}");
  EXPECT_FALSE(reply_ok(j));
  EXPECT_NE(j.find("error")->as_string().find("stub"), std::string::npos);
  // Abandon of an insecure AS.
  j = ask(*s, R"({"op":"whatif_abandon","asn":)" +
                  std::to_string(find_insecure_isp_asn(*s)) + "}");
  EXPECT_FALSE(reply_ok(j));
  // Unknown op, missing op, mistyped asn.
  EXPECT_FALSE(reply_ok(ask(*s, R"({"op":"frobnicate"})")));
  EXPECT_FALSE(reply_ok(ask(*s, R"({"k":3})")));
  EXPECT_FALSE(reply_ok(ask(*s, R"({"op":"whatif_adopt","asn":-3})")));
  EXPECT_FALSE(reply_ok(ask(*s, R"({"op":"whatif_adopt"})")));
  // The session survived all of it.
  EXPECT_TRUE(reply_ok(ask(*s, R"({"op":"query_state"})")));
}

TEST(SvcSession, TopkOrderingAndBound) {
  auto s = make_session();
  const Json j = ask(*s, R"({"op":"topk_next_adopters","k":5})");
  ASSERT_TRUE(reply_ok(j)) << j.dump();
  const Json* arr = j.find("adopters");
  ASSERT_NE(arr, nullptr);
  const auto& items = arr->items();
  ASSERT_LE(items.size(), 5u);
  ASSERT_GE(items.size(), 1u);
  double prev = std::numeric_limits<double>::infinity();
  for (const Json& e : items) {
    const double d = e.find("delta")->as_double();
    EXPECT_LE(d, prev);  // descending by projected gain
    prev = d;
    // Every candidate is an insecure ISP.
    const AsId id = static_cast<AsId>(e.find("id")->as_u64());
    EXPECT_TRUE(s->graph().is_isp(id));
    EXPECT_FALSE(s->state().is_secure(id));
  }
}

TEST(SvcSession, AdoptSecuresStubsAndUpdatesWhatifs) {
  auto s = make_session();
  const std::uint32_t asn = find_insecure_isp_asn(*s);
  const std::uint64_t before =
      ask(*s, R"({"op":"query_state"})").find("secure_ases")->as_u64();

  const Json j = ask(*s, R"({"op":"adopt","asn":)" + std::to_string(asn) + "}");
  ASSERT_TRUE(reply_ok(j)) << j.dump();
  const std::uint64_t after = j.find("secure_ases")->as_u64();
  EXPECT_EQ(after, before + 1 + j.find("stubs_secured")->as_u64());

  // The same AS is now secure: a repeat adopt and a whatif_adopt both fail.
  EXPECT_FALSE(reply_ok(ask(*s, R"({"op":"adopt","asn":)" +
                                    std::to_string(asn) + "}")));
  EXPECT_FALSE(reply_ok(ask(*s, R"({"op":"whatif_adopt","asn":)" +
                                    std::to_string(asn) + "}")));
}

TEST(SvcSession, MutateAddStubThenEdgeReferencingIt) {
  auto s = make_session(/*check_topo_delta=*/true);
  const std::uint32_t provider = find_insecure_isp_asn(*s);
  const std::uint32_t other_stub = find_stub_asn(*s);
  const std::size_t nodes_before = s->graph().num_nodes();

  // Second op references the stub the first op creates: resolution must see
  // each predecessor's effect.
  const std::string req =
      R"({"op":"mutate_topology","ops":[)"
      R"({"action":"add_stub","asn":900500,"providers":[)" +
      std::to_string(provider) + R"(]},)"
      R"({"action":"add_edge","type":"peer","a":900500,"b":)" +
      std::to_string(other_stub) + "}]}";
  const Json j = ask(*s, req);
  ASSERT_TRUE(reply_ok(j)) << j.dump();
  EXPECT_EQ(j.find("ops_applied")->as_u64(), 2u);
  ASSERT_EQ(j.find("new_nodes")->items().size(), 1u);
  EXPECT_EQ(j.find("new_nodes")->items()[0].find("asn")->as_u64(), 900500u);
  EXPECT_TRUE(j.find("full_invalidation")->as_bool());  // add_stub resizes
  EXPECT_EQ(s->graph().num_nodes(), nodes_before + 1);

  // The new stub is insecure and queryable; whatif on it is the stub error.
  const Json w = ask(*s, R"({"op":"whatif_adopt","asn":900500})");
  EXPECT_FALSE(reply_ok(w));
  EXPECT_NE(w.find("error")->as_string().find("stub"), std::string::npos);

  // With check_topo_delta on, follow-up evaluations run in lockstep with a
  // full recompute: a whatif after the mutation exercises that path.
  EXPECT_TRUE(reply_ok(ask(*s, R"({"op":"whatif_adopt","asn":)" +
                                   std::to_string(provider) + "}")));
}

TEST(SvcSession, MutateMidBatchErrorReportsOpsApplied) {
  auto s = make_session();
  const std::uint32_t a = find_insecure_isp_asn(*s);
  const std::uint32_t stub = find_stub_asn(*s);
  // Op 1 is legal (new peer edge); op 2 removes an edge that does not exist.
  const std::string req =
      R"({"op":"mutate_topology","ops":[)"
      R"({"action":"add_stub","asn":900600,"providers":[)" +
      std::to_string(a) + R"(]},)"
      R"({"action":"remove_edge","a":900600,"b":)" + std::to_string(stub) +
      "}]}";
  const Json j = ask(*s, req);
  EXPECT_FALSE(reply_ok(j));
  EXPECT_EQ(j.find("ops_applied")->as_u64(), 1u);  // partial batch applied
  EXPECT_FALSE(j.find("error")->as_string().empty());
  // The applied prefix is live: the stub exists now.
  EXPECT_EQ(static_cast<std::size_t>(s->graph().find_asn(900600)),
            s->graph().num_nodes() - 1);
  // And the session still answers.
  EXPECT_TRUE(reply_ok(ask(*s, R"({"op":"query_state"})")));
}

TEST(SvcSession, MetricsAndShutdownOps) {
  auto s = make_session();
  EXPECT_FALSE(s->shutdown_requested());
  const Json m = ask(*s, R"({"op":"metrics"})");
  ASSERT_TRUE(reply_ok(m)) << m.dump();
  EXPECT_NE(m.find("registry"), nullptr);
  const Json j = ask(*s, R"({"op":"shutdown"})");
  EXPECT_TRUE(reply_ok(j));
  EXPECT_TRUE(s->shutdown_requested());
}

TEST(SvcSession, HandleLineSurvivesGarbage) {
  auto s = make_session();
  const std::string r1 = s->handle_line("this is not json");
  EXPECT_NE(r1.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(r1.find("parse error"), std::string::npos);
  const std::string r2 = s->handle_line(R"({"op":"query_state"})");
  EXPECT_NE(r2.find("\"ok\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/sbgp_test_svc_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

void send_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

std::string recv_line(int fd) {
  std::string reply;
  char ch;
  while (true) {
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n <= 0) {
      ADD_FAILURE() << "connection closed mid-reply";
      return reply;
    }
    if (ch == '\n') return reply;
    reply.push_back(ch);
  }
}

TEST(SvcServer, RoundTripPipeliningAndRequestStop) {
  auto s = make_session();
  const std::string path = test_socket_path("rt");
  svc::Server server(*s, {.socket_path = path});
  std::atomic<int> rc{-1};
  std::thread t([&] { rc = server.run(); });

  const int fd = connect_to(path);
  send_line(fd, R"({"op":"query_state"})");
  std::string reply = recv_line(fd);
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;

  // Two pipelined requests in one write yield two replies in order.
  send_line(fd, R"({"op":"topk_next_adopters","k":2})" "\n" R"({"op":"metrics"})");
  const std::string r1 = recv_line(fd);
  const std::string r2 = recv_line(fd);
  EXPECT_NE(r1.find("topk_next_adopters"), std::string::npos) << r1;
  EXPECT_NE(r2.find("\"op\":\"metrics\""), std::string::npos) << r2;

  // Garbage gets an error reply without dropping the connection.
  send_line(fd, "garbage");
  EXPECT_NE(recv_line(fd).find("\"ok\":false"), std::string::npos);
  send_line(fd, R"({"op":"query_state"})");
  EXPECT_NE(recv_line(fd).find("\"ok\":true"), std::string::npos);

  ::close(fd);
  server.request_stop();
  t.join();
  EXPECT_EQ(rc.load(), 0);
  // Socket file is gone after the drain.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(SvcServer, InBandShutdownDrains) {
  auto s = make_session();
  const std::string path = test_socket_path("shut");
  svc::Server server(*s, {.socket_path = path});
  std::atomic<int> rc{-1};
  std::thread t([&] { rc = server.run(); });

  const int fd = connect_to(path);
  send_line(fd, R"({"op":"shutdown"})");
  const std::string reply = recv_line(fd);
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  t.join();  // run() returns on its own after answering the shutdown
  EXPECT_EQ(rc.load(), 0);
  ::close(fd);
}

TEST(SvcServer, SigtermDrainsCleanly) {
  auto s = make_session();
  const std::string path = test_socket_path("term");
  svc::Server server(*s, {.socket_path = path});
  std::atomic<int> rc{-1};
  std::thread t([&] { rc = server.run(); });

  // A full round trip proves run() is in its poll loop (and therefore the
  // signal handler is installed) before we raise SIGTERM.
  const int fd = connect_to(path);
  send_line(fd, R"({"op":"query_state"})");
  EXPECT_NE(recv_line(fd).find("\"ok\":true"), std::string::npos);

  ::kill(::getpid(), SIGTERM);
  t.join();
  EXPECT_EQ(rc.load(), 0);
  ::close(fd);
}

}  // namespace
}  // namespace sbgp
