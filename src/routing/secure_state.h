// Flat secure-state representations for the routing-tree hot path.
//
//  - LinkSet: the per-link deployment mask of Section 8.3 / Appendix J in
//    CSR form — one sorted neighbour array with per-node offsets, probed by
//    the shared branchless binary search (topo::sorted_contains). Replaces
//    the nested vector<vector<AsId>> the SecurityView used to carry.
//  - SecureMask: a word-packed bitset snapshot of a SecurityView — one
//    `secure` bit and one `applies_secp` bit per AS. The tree scan loops are
//    bandwidth-bound; reading one bit beats re-deriving the branchy
//    SecurityView predicate (flip/suppression/simplex-stub checks) per node
//    per tree. A base-state mask is built once per round and shared by every
//    worker; each hypothetical flip is a words-memcpy plus an O(degree)
//    patch instead of a fresh O(N) scan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "routing/arena.h"
#include "topology/as_graph.h"

namespace sbgp::rt {

using topo::AsGraph;
using topo::AsId;
using topo::kNoAs;

struct SecurityView;  // routing_tree.h

/// CSR set of enabled (signing+validating) links: node n's enabled
/// neighbours are a sorted id range. The identity element (every link of
/// every AS enabled) is `LinkSet::all(graph)`.
class LinkSet {
 public:
  LinkSet() = default;

  /// Compacts per-node neighbour lists (the builder form produced by
  /// rt::full_link_mask and mutated by the ablation harnesses) into CSR.
  /// Each list is sorted on the way in; `lists.size()` must equal
  /// `graph.num_nodes()`.
  LinkSet(const AsGraph& graph, const std::vector<std::vector<AsId>>& lists);

  /// Every link of every AS enabled — straight copy of the graph adjacency.
  [[nodiscard]] static LinkSet all(const AsGraph& graph);

  [[nodiscard]] std::span<const AsId> enabled(AsId n) const {
    return {ids_.data() + begin_[n], ids_.data() + begin_[n + 1]};
  }

  /// Did `from` enable the link to `to`? Branchless sorted-membership probe.
  [[nodiscard]] bool contains(AsId from, AsId to) const {
    return topo::sorted_contains(enabled(from), to);
  }

  /// Is the hop a<->b cryptographically active? Deployment entails both
  /// signing and verification (Appendix J), so both endpoints must enable it.
  [[nodiscard]] bool hop_enabled(AsId a, AsId b) const {
    return contains(a, b) && contains(b, a);
  }

  [[nodiscard]] std::size_t num_nodes() const {
    return begin_.empty() ? 0 : begin_.size() - 1;
  }

 private:
  std::vector<AsId> ids_;
  std::vector<std::uint32_t> begin_;
};

/// Word-packed snapshot of a SecurityView: bit x of `secure` answers
/// view.is_secure(x), bit x of `secp` answers view.applies_secp(x), and
/// `links` carries the per-link deployment (null = all links active). The
/// words live in a caller-provided Arena, so rebuilding a mask in the steady
/// state allocates nothing.
struct SecureMask {
  const AsGraph* graph = nullptr;
  const LinkSet* links = nullptr;
  std::uint64_t* secure = nullptr;
  std::uint64_t* secp = nullptr;
  std::size_t words = 0;

  [[nodiscard]] bool is_secure(AsId x) const {
    return (secure[x >> 6] >> (x & 63)) & 1;
  }
  [[nodiscard]] bool applies_secp(AsId x) const {
    return (secp[x >> 6] >> (x & 63)) & 1;
  }
  [[nodiscard]] bool hop_secure(AsId a, AsId b) const {
    return links == nullptr || links->hop_enabled(a, b);
  }

  /// Materializes `view` in full generality (flips, freezes, per-destination
  /// suppression) — one branchy O(N) pass, the price the per-node predicate
  /// used to pay on every tree.
  void build(const SecurityView& view, Arena& arena);

  /// Fast path for the simulator's Eq. 3 projections: `base` must be the
  /// mask of `base_view` (no flips, no suppression). Copies the base words
  /// and patches the single-flip delta:
  ///  - on:  `cand` turns secure (and applies SecP per its class); its
  ///    insecure, unfrozen stub customers are simplex-secured (Section 2.3)
  ///    and tie-break per `stub_breaks_ties`;
  ///  - off: `cand` turns insecure (its stubs stay simplex-secure: signing
  ///    is sticky).
  /// O(N/64) words + O(degree(cand)) instead of O(N) predicate calls.
  void assign_flipped(const SecureMask& base, const SecurityView& base_view,
                      AsId cand, bool on, Arena& arena);

 private:
  void ensure(const AsGraph& g, const LinkSet* ls, Arena& arena);
  void set_bit(std::uint64_t* w, AsId x) { w[x >> 6] |= std::uint64_t{1} << (x & 63); }
  void clear_bit(std::uint64_t* w, AsId x) { w[x >> 6] &= ~(std::uint64_t{1} << (x & 63)); }
};

}  // namespace sbgp::rt
