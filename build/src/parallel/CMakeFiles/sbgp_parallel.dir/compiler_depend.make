# Empty compiler generated dependencies file for sbgp_parallel.
# This may be replaced when dependencies are built.
