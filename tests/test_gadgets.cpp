#include <gtest/gtest.h>

#include "core/early_adopters.h"
#include "core/simulator.h"
#include "gadgets/gadgets.h"

namespace sbgp::gadgets {
namespace {

TEST(Chicken, BiMatrixHasTable5Structure) {
  const auto g = make_chicken(/*m=*/10000.0, /*eps=*/100.0);
  ASSERT_TRUE(g.graph.validate().empty());
  const auto mat = evaluate_chicken_matrix(g);

  const auto& on_on = mat.u[1][1];
  const auto& on_off = mat.u[1][0];
  const auto& off_on = mat.u[0][1];
  const auto& off_off = mat.u[0][0];

  // Table 5 (utilities of 10 and 20 up to gadget-noise constants):
  //   (ON , ON ) = (m + eps, eps)
  //   (ON , OFF) = (2m + eps, m)
  //   (OFF, ON ) = (2m, m + eps)
  //   (OFF, OFF) = (2m, m)
  // Check the best-response structure rather than absolute values:
  // from (ON, ON) both prefer to turn OFF...
  EXPECT_GT(off_on.first, on_on.first);    // 10: OFF better when 20 is ON
  EXPECT_GT(on_off.second, on_on.second);  // 20: OFF better when 10 is ON
  // ... from (OFF, OFF) both prefer to turn ON ...
  EXPECT_GT(on_off.first, off_off.first);    // 10: ON better when 20 is OFF
  EXPECT_GT(off_on.second, off_off.second);  // 20: ON better when 10 is OFF
  // ... and the two asymmetric states are stable (pure Nash equilibria).
  EXPECT_GE(on_off.first, off_off.first);
  EXPECT_GE(on_off.second, on_on.second);
  EXPECT_GE(off_on.second, off_off.second);
  EXPECT_GE(off_on.first, on_on.first);

  // The preference margins are on the order of m (the paper's designated
  // flows contribute exactly m; our all-pairs traffic adds parasitic copies
  // of the same ties, amplifying but never reversing the margins).
  const double m = 10000.0;
  EXPECT_GT(on_off.first - on_on.first, 0.9 * m);
  EXPECT_GT(off_off.second - on_on.second, 0.9 * m);
  EXPECT_LT(std::abs(off_on.first - off_off.first), 0.2 * m);  // only eps-flows differ
}

TEST(Chicken, SynchronousDynamicsOscillate) {
  // Section 7.2: the deployment process need not reach a stable state. Both
  // players start OFF; under simultaneous myopic best response they flip ON
  // together, then OFF together, forever.
  const auto g = make_chicken();
  core::SimConfig cfg;
  g.configure(cfg);
  cfg.max_rounds = 40;
  core::DeploymentSimulator sim(g.graph, cfg);
  const auto result = sim.run(g.initial);
  EXPECT_EQ(result.outcome, core::Outcome::Oscillating);
}

TEST(Chicken, AsymmetricStartIsStable) {
  const auto g = make_chicken();
  core::SimConfig cfg;
  g.configure(cfg);
  core::DeploymentSimulator sim(g.graph, cfg);
  auto s = g.initial;
  s.set_secure(g.node("10"), true);  // (ON, OFF): a pure Nash equilibrium
  const auto result = sim.run(s);
  EXPECT_EQ(result.outcome, core::Outcome::Stable);
  EXPECT_TRUE(result.final_state.is_secure(g.node("10")));
  EXPECT_FALSE(result.final_state.is_secure(g.node("20")));
}

class AndGadget : public ::testing::TestWithParam<std::array<bool, 3>> {};

TEST_P(AndGadget, OutputIsConjunctionOfInputs) {
  const auto inputs = GetParam();
  const auto g = make_and(inputs);
  ASSERT_TRUE(g.graph.validate().empty());
  core::SimConfig cfg;
  g.configure(cfg);
  core::DeploymentSimulator sim(g.graph, cfg);
  const auto result = sim.run(g.initial);
  EXPECT_EQ(result.outcome, core::Outcome::Stable);
  const bool expect_on = inputs[0] && inputs[1] && inputs[2];
  EXPECT_EQ(result.final_state.is_secure(g.node("amp")), expect_on)
      << "inputs " << inputs[0] << inputs[1] << inputs[2];
}

INSTANTIATE_TEST_SUITE_P(
    TruthTable, AndGadget,
    ::testing::Values(std::array<bool, 3>{false, false, false},
                      std::array<bool, 3>{true, false, false},
                      std::array<bool, 3>{false, true, false},
                      std::array<bool, 3>{false, false, true},
                      std::array<bool, 3>{true, true, false},
                      std::array<bool, 3>{true, false, true},
                      std::array<bool, 3>{false, true, true},
                      std::array<bool, 3>{true, true, true}));

class SelectorGadget : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SelectorGadget, OneHotStatesAreStable) {
  // Lemma K.5 (1): each state with exactly one player ON is stable.
  const std::size_t k = GetParam();
  const auto g = make_selector(k);
  ASSERT_TRUE(g.graph.validate().empty());
  core::SimConfig cfg;
  g.configure(cfg);
  for (std::size_t winner = 0; winner < k; ++winner) {
    auto s = g.initial;
    s.set_secure(g.node("p" + std::to_string(winner + 1)), true);
    core::DeploymentSimulator sim(g.graph, cfg);
    const auto result = sim.run(s);
    EXPECT_EQ(result.outcome, core::Outcome::Stable) << "winner " << winner;
    EXPECT_EQ(result.rounds_run(), 0u) << "winner " << winner;
  }
}

TEST_P(SelectorGadget, TwoOnStatesCollapse) {
  // Lemma K.5 (2): with more than one player ON, ON players turn OFF.
  const std::size_t k = GetParam();
  const auto g = make_selector(k);
  core::SimConfig cfg;
  g.configure(cfg);
  auto s = g.initial;
  s.set_secure(g.node("p1"), true);
  s.set_secure(g.node("p2"), true);
  core::DeploymentSimulator sim(g.graph, cfg);
  std::vector<topo::AsId> first_round_off;
  (void)sim.run(s, [&](const core::RoundObservation& obs) {
    if (obs.round == 1) first_round_off = *obs.flipping_off;
  });
  EXPECT_GE(first_round_off.size(), 2u)
      << "both contested players should want OFF";
}

TEST_P(SelectorGadget, AllOffOscillatesSynchronously) {
  const std::size_t k = GetParam();
  const auto g = make_selector(k);
  core::SimConfig cfg;
  g.configure(cfg);
  cfg.max_rounds = 30;
  core::DeploymentSimulator sim(g.graph, cfg);
  const auto result = sim.run(g.initial);
  EXPECT_EQ(result.outcome, core::Outcome::Oscillating);
}

INSTANTIATE_TEST_SUITE_P(K, SelectorGadget, ::testing::Values(2, 3, 4));

struct TransitionParam {
  std::size_t k, from, to;
};

class TransitionGadget : public ::testing::TestWithParam<TransitionParam> {};

TEST_P(TransitionGadget, ResetsSelectorFromToInFivePhases) {
  // Appendix K.7 / Figure 23: starting at one-hot(from), the transition
  // node fires, forces `to` ON, selector pressure turns `from` OFF, the
  // transition node retires, and the system stabilises at one-hot(to).
  const auto [k, from, to] = GetParam();
  const auto g = make_selector_with_transition(k, from, to);
  ASSERT_TRUE(g.graph.validate().empty());
  core::SimConfig cfg;
  g.configure(cfg);
  auto s = g.initial;
  s.set_secure(g.node("p" + std::to_string(from + 1)), true);
  core::DeploymentSimulator sim(g.graph, cfg);
  const auto result = sim.run(s);
  EXPECT_EQ(result.outcome, core::Outcome::Stable);
  EXPECT_EQ(result.rounds_run(), 4u) << "the Figure 23 phase count";
  for (std::size_t w = 0; w < k; ++w) {
    EXPECT_EQ(result.final_state.is_secure(g.node("p" + std::to_string(w + 1))),
              w == to)
        << "player " << w + 1;
  }
  EXPECT_FALSE(result.final_state.is_secure(g.node("t")))
      << "the transition node retires to its Hold traffic";
}

TEST_P(TransitionGadget, DoesNotFireFromOtherStates) {
  // Proposition K.7: t turns ON iff `from` is ON. From one-hot states of
  // other players the gadget must stay put.
  const auto [k, from, to] = GetParam();
  const auto g = make_selector_with_transition(k, from, to);
  core::SimConfig cfg;
  g.configure(cfg);
  for (std::size_t w = 0; w < k; ++w) {
    if (w == from) continue;
    auto s = g.initial;
    s.set_secure(g.node("p" + std::to_string(w + 1)), true);
    core::DeploymentSimulator sim(g.graph, cfg);
    const auto result = sim.run(s);
    EXPECT_EQ(result.outcome, core::Outcome::Stable) << "winner " << w;
    EXPECT_EQ(result.rounds_run(), 0u) << "winner " << w;
    EXPECT_FALSE(result.final_state.is_secure(g.node("t")));
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, TransitionGadget,
                         ::testing::Values(TransitionParam{2, 0, 1},
                                           TransitionParam{3, 0, 1},
                                           TransitionParam{3, 1, 2},
                                           TransitionParam{3, 2, 0},
                                           TransitionParam{4, 3, 0}));

TEST(BuyersRemorse, TelecomTurnsOffAndStaysOff) {
  // Figure 13: in the incoming model the telecom ISP's myopic best response
  // from the given state is to disable S*BGP — and the resulting state is
  // stable (it does not flip back).
  const auto g = make_buyers_remorse();
  ASSERT_TRUE(g.graph.validate().empty());
  core::SimConfig cfg;
  g.configure(cfg);
  core::DeploymentSimulator sim(g.graph, cfg);
  const auto result = sim.run(g.initial);
  EXPECT_EQ(result.outcome, core::Outcome::Stable);
  EXPECT_FALSE(result.final_state.is_secure(g.node("telecom")));
  ASSERT_FALSE(result.rounds.empty());
  EXPECT_EQ(result.rounds.front().turned_off, 1u);
  // The stubs remain simplex-secure throughout (deployment is sticky).
  EXPECT_TRUE(result.final_state.is_secure(g.node("stub0")));
}

TEST(BuyersRemorse, NoIncentiveInOutgoingModel) {
  // Theorem 6.2: the same instance has no turn-off incentive under the
  // outgoing model.
  const auto g = make_buyers_remorse();
  core::SimConfig cfg;
  g.configure(cfg);
  cfg.model = core::UtilityModel::Outgoing;
  core::DeploymentSimulator sim(g.graph, cfg);
  const auto result = sim.run(g.initial);
  EXPECT_EQ(result.outcome, core::Outcome::Stable);
  EXPECT_TRUE(result.final_state.is_secure(g.node("telecom")));
}

TEST(SetCover, AdoptersSecureExactlyTheirCoveredElements) {
  // Theorem 6.1's reduction: seeding s_i1 secures d, pulls s_i2 in, which
  // simplex-secures exactly the elements of S_i.
  SetCoverInstance inst;
  inst.universe_size = 5;
  inst.sets = {{0, 1, 2}, {2, 3}, {3, 4}};
  const auto g = make_set_cover(inst);
  ASSERT_TRUE(g.graph.validate().empty());

  core::SimConfig cfg;
  g.configure(cfg);
  cfg.model = core::UtilityModel::Outgoing;

  core::DeploymentSimulator sim(g.graph, cfg);
  const std::vector<topo::AsId> adopters{g.node("s0_1")};
  const auto result =
      sim.run(core::DeploymentState::initial(g.graph, adopters));
  EXPECT_EQ(result.outcome, core::Outcome::Stable);
  EXPECT_TRUE(result.final_state.is_secure(g.node("d")));
  EXPECT_TRUE(result.final_state.is_secure(g.node("s0_2")));
  EXPECT_TRUE(result.final_state.is_secure(g.node("u0")));
  EXPECT_TRUE(result.final_state.is_secure(g.node("u1")));
  EXPECT_TRUE(result.final_state.is_secure(g.node("u2")));
  EXPECT_FALSE(result.final_state.is_secure(g.node("u3")));
  EXPECT_FALSE(result.final_state.is_secure(g.node("u4")));
  EXPECT_FALSE(result.final_state.is_secure(g.node("s1_2")));
}

TEST(SetCover, GreedyAndBruteForceFindTheCover) {
  // {0,1,2} + {3,4} covers everything with k=2; {2,3} is a decoy.
  SetCoverInstance inst;
  inst.universe_size = 5;
  inst.sets = {{0, 1, 2}, {2, 3}, {3, 4}};
  const auto g = make_set_cover(inst);
  core::SimConfig cfg;
  g.configure(cfg);
  cfg.model = core::UtilityModel::Outgoing;

  const auto candidates = set_cover_candidates(g, inst);
  const auto greedy = core::greedy_adopters(g.graph, candidates, 2, cfg);
  const auto optimal = core::optimal_adopters_bruteforce(g.graph, candidates, 2, cfg);

  const auto is_cover = [&](const std::vector<topo::AsId>& sel) {
    return (std::find(sel.begin(), sel.end(), g.node("s0_1")) != sel.end()) &&
           (std::find(sel.begin(), sel.end(), g.node("s2_1")) != sel.end());
  };
  EXPECT_TRUE(is_cover(greedy));
  EXPECT_TRUE(is_cover(optimal));
  EXPECT_EQ(core::deployment_reach(g.graph, optimal, cfg),
            core::deployment_reach(g.graph, greedy, cfg));
}

}  // namespace
}  // namespace sbgp::gadgets
