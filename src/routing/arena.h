// Bump allocator for per-worker routing scratch. The hot loop computes one
// routing tree per (destination, hypothetical flip) and needs a handful of
// word-packed masks per tree; a general-purpose allocator would charge a
// malloc/free pair (and a lock, under contention) for each. The arena instead
// hands out pointers from geometrically-growing blocks that are NEVER
// returned: `reset()` rewinds the cursor and reuses the same memory, so in
// the steady state a tree computation performs zero heap allocations. The
// upstream-allocation counter is exported through `obs::` metrics
// (`rt.arena.blocks` / `rt.arena.bytes`), which is how the perf tests assert
// the zero-allocation property instead of trusting it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace sbgp::rt {

class Arena {
 public:
  /// `first_block_bytes` sizes the initial block; later blocks double until
  /// `kMaxBlockBytes`. Oversized requests get a dedicated block.
  explicit Arena(std::size_t first_block_bytes = std::size_t{1} << 16)
      : next_block_bytes_(first_block_bytes > 0 ? first_block_bytes : 64) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Moves keep the blocks (and every pointer handed out from them) alive —
  // needed so owners can live in vectors of per-worker scratch.
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocates `count` default-constructible objects of trivially
  /// destructible type T (no destructor ever runs). The memory is
  /// uninitialized. Alignment of T is honoured.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is recycled without running destructors");
    return static_cast<T*>(alloc_bytes(count * sizeof(T), alignof(T)));
  }

  /// Rewinds the cursor to the start of the first block. All previously
  /// handed-out pointers become invalid; the blocks themselves are kept, so
  /// a reset-allocate cycle of the same shape touches the allocator never.
  void reset() {
    block_ = 0;
    offset_ = 0;
  }

  /// Number of upstream (heap) block allocations over the arena's lifetime.
  /// Flat across steady-state iterations == the zero-allocation property.
  [[nodiscard]] std::size_t upstream_allocations() const { return blocks_.size(); }

  /// Total bytes reserved from the heap.
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 24;  // 16 MiB

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  [[nodiscard]] void* alloc_bytes(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t aligned =
          (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        offset_ = aligned + bytes;
        return b.data.get() + aligned;
      }
      // Current block exhausted; move to the next reusable one.
      ++block_;
      offset_ = 0;
    }
    return grow(bytes, align);
  }

  void* grow(std::size_t bytes, std::size_t align) {
    std::size_t size = next_block_bytes_;
    while (size < bytes + align) size *= 2;
    next_block_bytes_ = std::min(size * 2, kMaxBlockBytes);
    Block b;
    b.data = std::make_unique<std::byte[]>(size);
    b.size = size;
    bytes_reserved_ += size;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    // operator new of the block array is suitably aligned for the word
    // types the routing layer allocates; realign defensively anyway.
    auto base = reinterpret_cast<std::uintptr_t>(blocks_.back().data.get());
    const std::size_t aligned = (base % align != 0) ? align - base % align : 0;
    offset_ = aligned + bytes;
    static obs::Counter& blocks_ctr =
        obs::Registry::global().counter("rt.arena.blocks");
    static obs::Counter& bytes_ctr =
        obs::Registry::global().counter("rt.arena.bytes");
    blocks_ctr.add(1);
    bytes_ctr.add(size);
    return blocks_.back().data.get() + aligned;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;        ///< index of the block being bumped
  std::size_t offset_ = 0;       ///< cursor within that block
  std::size_t next_block_bytes_;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace sbgp::rt
