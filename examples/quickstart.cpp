// Quickstart: generate a synthetic Internet, seed ten early adopters
// (five content providers + five top-degree ISPs, the paper's Section 5
// case study), and run the market-driven S*BGP deployment process.
//
//   ./quickstart [num_ases] [theta] [seed]
#include <cstdlib>
#include <iostream>

#include "core/early_adopters.h"
#include "core/simulator.h"
#include "stats/table.h"
#include "topology/topology_gen.h"

int main(int argc, char** argv) {
  using namespace sbgp;

  topo::InternetConfig net_cfg;
  net_cfg.total_ases = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2000;
  double theta = argc > 2 ? std::atof(argv[2]) : 0.05;
  net_cfg.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  std::cout << "Generating a " << net_cfg.total_ases << "-AS Internet (seed "
            << net_cfg.seed << ")...\n";
  topo::Internet net = topo::generate_internet(net_cfg);
  const auto problems = net.graph.validate();
  if (!problems.empty()) {
    for (const auto& p : problems) std::cerr << "topology problem: " << p << '\n';
    return 1;
  }
  // Content providers originate x = 10% of all traffic (Section 3.1).
  const double w_cp = topo::apply_traffic_model(net.graph, net.cps, 0.10);
  std::cout << "  " << net.graph.num_stubs() << " stubs, " << net.graph.num_isps()
            << " ISPs, " << net.graph.num_content_providers()
            << " content providers (w_CP = " << w_cp << ")\n";

  // Early adopters: the five CPs plus the five highest-degree ISPs.
  const auto adopters = core::select_adopters(
      net, core::AdopterStrategy::CpsPlusTopIsps, /*k=*/5, /*seed=*/1);
  std::cout << "  early adopters:";
  for (const auto a : adopters) std::cout << " AS" << net.graph.asn(a);
  std::cout << "\n\n";

  core::SimConfig cfg;
  cfg.model = core::UtilityModel::Outgoing;
  cfg.theta = theta;
  core::DeploymentSimulator sim(net.graph, cfg);
  const auto result =
      sim.run(core::DeploymentState::initial(net.graph, adopters));

  stats::Table table({"round", "new secure ISPs", "new simplex stubs",
                      "total secure ASes", "total secure ISPs"});
  for (const auto& r : result.rounds) {
    table.begin_row();
    table.add(r.round);
    table.add(r.newly_secure_isps);
    table.add(r.newly_secure_stubs);
    table.add(r.total_secure_ases);
    table.add(r.total_secure_isps);
  }
  table.print(std::cout);

  const double n = static_cast<double>(net.graph.num_nodes());
  const double secure = static_cast<double>(result.final_state.num_secure());
  const double isps_secure = static_cast<double>(
      result.final_state.num_secure_of_class(net.graph, topo::AsClass::Isp));
  std::cout << "\noutcome: " << core::to_string(result.outcome) << " after "
            << result.rounds_run() << " rounds\n";
  std::cout << "secure ASes: " << 100.0 * secure / n << "%  (paper case study: 85%)\n";
  std::cout << "secure ISPs: "
            << 100.0 * isps_secure / static_cast<double>(net.graph.num_isps())
            << "%  (paper case study: 80%)\n";
  return 0;
}
