// Attack scenarios for the protocol engine.
//
// Appendix B (Figure 15): preferring *partially* secure paths over insecure
// ones introduces an attack that does not exist even without S*BGP — a
// malicious AS m falsely announces (m, v); the partially-attested false
// path (p,q,m,v) then beats the fully-insecure true path (p,r,s,v) at the
// secure AS p. Under the paper's rule (only fully-secure paths are
// preferred) p keeps the true route. This is why Section 2.2.2 forbids
// partial-path preference.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/engine.h"

namespace sbgp::proto {

/// Outcome of one run of the Figure 15 scenario.
struct PartialPreferenceResult {
  std::vector<std::uint32_t> path_ignore_partial;  ///< p's path, paper's rule
  std::vector<std::uint32_t> path_prefer_partial;  ///< p's path, flawed rule
  bool attack_succeeds_with_partial = false;  ///< p routes into m under the flawed rule
  bool attack_succeeds_with_ignore = false;   ///< ... under the paper's rule
};

/// Builds the 6-AS Figure 15 network, runs convergence for destination v,
/// injects m's false announcement (m, v), and reports p's chosen route under
/// both partial-path policies.
[[nodiscard]] PartialPreferenceResult run_partial_preference_attack();

/// Origin-hijack experiment on a configurable chain: victim v at one end,
/// attacker m at distance `attacker_distance` from the probe AS, true path
/// length `victim_distance`. Demonstrates that S*BGP-as-tiebreak stops
/// equally-long bogus routes but — by design (LP and SP rank above SecP) —
/// not strictly shorter ones.
struct HijackResult {
  bool probe_fooled_bgp = false;       ///< plain BGP: probe routes to attacker
  bool probe_fooled_sbgp = false;      ///< S-BGP everywhere, tie-break rule
  std::size_t true_path_len = 0;
  std::size_t false_path_len = 0;
};

[[nodiscard]] HijackResult run_origin_hijack(std::size_t victim_distance,
                                             std::size_t attacker_distance);

}  // namespace sbgp::proto
