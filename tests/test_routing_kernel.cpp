// PR-7 kernel coverage: CSR adjacency equivalence on topo::AsGraph, the
// arena/bitset/slab routing-layer primitives (rt::Arena, rt::LinkSet,
// rt::SecureMask, rt::RibStore), the steady-state zero-allocation property
// (asserted through the obs:: arena counters, not trusted), and a
// full-Internet-scale (36,964-AS, the paper's measured topology size)
// generation + RIB + routing-tree smoke.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "obs/metrics.h"
#include "routing/arena.h"
#include "routing/rib.h"
#include "routing/rib_store.h"
#include "routing/routing_tree.h"
#include "routing/secure_state.h"
#include "test_util.h"
#include "topology/topology_gen.h"

namespace sbgp {
namespace {

using topo::AsGraph;
using topo::AsId;
using topo::kNoAs;

/// A random multi-tier graph built edge by edge, returned together with the
/// adjacency snapshot taken BEFORE finalize() — i.e. the nested-vector
/// build-side truth the CSR form must reproduce exactly.
struct SnapshottedGraph {
  AsGraph g;
  std::vector<std::vector<AsId>> customers, peers, providers;
};

SnapshottedGraph random_snapshotted_graph(std::uint64_t seed,
                                          std::size_t nodes) {
  SnapshottedGraph out;
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < nodes; ++i) {
    out.g.add_as(static_cast<std::uint32_t>(1000 + i * 7 % (nodes * 13)));
  }
  // Provider edges only point "upward" (j provides i for j < i): acyclic by
  // construction, like the generator's tiered topology.
  std::uniform_int_distribution<std::size_t> deg(1, 3);
  for (AsId i = 1; i < nodes; ++i) {
    const std::size_t k = deg(rng);
    for (std::size_t e = 0; e < k; ++e) {
      const AsId p = static_cast<AsId>(rng() % i);
      out.g.add_customer_provider(i, p);
    }
  }
  for (std::size_t e = 0; e < nodes; ++e) {
    const AsId a = static_cast<AsId>(rng() % nodes);
    const AsId b = static_cast<AsId>(rng() % nodes);
    if (a != b) out.g.add_peer(a, b);
  }
  out.customers.resize(nodes);
  out.peers.resize(nodes);
  out.providers.resize(nodes);
  for (AsId n = 0; n < nodes; ++n) {
    const auto snap = [](auto span, std::vector<AsId>& dst) {
      dst.assign(span.begin(), span.end());
      std::sort(dst.begin(), dst.end());  // CSR segments are sorted
    };
    snap(out.g.customers(n), out.customers[n]);
    snap(out.g.peers(n), out.peers[n]);
    snap(out.g.providers(n), out.providers[n]);
  }
  out.g.finalize();
  return out;
}

TEST(CsrAdjacency, MatchesNestedBuildAcrossRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 17ull, 99ull}) {
    const auto sg = random_snapshotted_graph(seed, 120 + seed * 31);
    ASSERT_TRUE(sg.g.finalized());
    for (AsId n = 0; n < sg.g.num_nodes(); ++n) {
      const auto eq = [&](auto span, const std::vector<AsId>& want) {
        ASSERT_EQ(span.size(), want.size()) << "node " << n << " seed " << seed;
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(span[i], want[i]) << "node " << n << " seed " << seed;
        }
      };
      eq(sg.g.customers(n), sg.customers[n]);
      eq(sg.g.peers(n), sg.peers[n]);
      eq(sg.g.providers(n), sg.providers[n]);
      // The concatenated neighbors() view is exactly the three segments.
      const auto nb = sg.g.neighbors(n);
      ASSERT_EQ(nb.size(), sg.customers[n].size() + sg.peers[n].size() +
                               sg.providers[n].size());
      std::size_t at = 0;
      for (const auto* seg : {&sg.customers[n], &sg.peers[n], &sg.providers[n]}) {
        for (const AsId x : *seg) ASSERT_EQ(nb[at++], x);
      }
    }
  }
}

TEST(CsrAdjacency, HandBuiltDiamondSegmentsAndMembership) {
  // e provides a, b and its own stub x; a and b both provide s.
  const auto d = test::make_diamond();
  EXPECT_EQ(d.g.providers(d.e).size(), 0u);
  ASSERT_EQ(d.g.customers(d.e).size(), 3u);
  // Segment contents are sorted node ids, not insertion order.
  EXPECT_TRUE(std::is_sorted(d.g.customers(d.e).begin(),
                             d.g.customers(d.e).end()));
  EXPECT_TRUE(topo::sorted_contains(d.g.customers(d.e), d.a));
  EXPECT_TRUE(topo::sorted_contains(d.g.customers(d.e), d.b));
  EXPECT_TRUE(topo::sorted_contains(d.g.customers(d.e), d.x));
  EXPECT_FALSE(topo::sorted_contains(d.g.customers(d.e), d.s));
  topo::Link link;
  EXPECT_TRUE(d.g.link_between(d.a, d.s, link));
  EXPECT_FALSE(d.g.link_between(d.a, d.b, link));
}

TEST(CsrAdjacency, GeneratedInternetIsCrossConsistent) {
  const auto net = test::small_internet(400, 11);
  const auto& g = net.graph;
  for (AsId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_TRUE(std::is_sorted(g.customers(n).begin(), g.customers(n).end()));
    ASSERT_TRUE(std::is_sorted(g.peers(n).begin(), g.peers(n).end()));
    ASSERT_TRUE(std::is_sorted(g.providers(n).begin(), g.providers(n).end()));
    for (const AsId c : g.customers(n)) {
      ASSERT_TRUE(topo::sorted_contains(g.providers(c), n));
    }
    for (const AsId p : g.peers(n)) {
      ASSERT_TRUE(topo::sorted_contains(g.peers(p), n));
    }
  }
}

TEST(SortedContains, AgreesWithLinearScanOnRandomSets) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<AsId> v(rng() % 17);
    for (auto& x : v) x = static_cast<AsId>(rng() % 50);
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    for (AsId probe = 0; probe < 50; ++probe) {
      const bool want = std::find(v.begin(), v.end(), probe) != v.end();
      EXPECT_EQ(topo::sorted_contains(std::span<const AsId>(v), probe), want);
    }
  }
}

TEST(Arena, SteadyStateReusesBlocksWithoutUpstreamAllocation) {
  rt::Arena arena(1 << 12);
  auto& blocks_ctr = obs::Registry::global().counter("rt.arena.blocks");
  // Warm-up: force a few blocks into existence.
  for (int i = 0; i < 4; ++i) (void)arena.alloc<std::uint64_t>(1000);
  const std::size_t warm_blocks = arena.upstream_allocations();
  const std::uint64_t warm_ctr = blocks_ctr.value();
  ASSERT_GE(warm_blocks, 1u);
  for (int cycle = 0; cycle < 100; ++cycle) {
    arena.reset();
    for (int i = 0; i < 4; ++i) {
      auto* p = arena.alloc<std::uint64_t>(1000);
      p[0] = cycle;  // memory must be writable and stable
      ASSERT_EQ(p[0], static_cast<std::uint64_t>(cycle));
    }
  }
  EXPECT_EQ(arena.upstream_allocations(), warm_blocks)
      << "reset+realloc of the same shape must not touch the heap";
  EXPECT_EQ(blocks_ctr.value(), warm_ctr)
      << "obs counter must agree with the arena's own accounting";
}

TEST(Arena, HonoursAlignmentAndOversizedRequests) {
  rt::Arena arena(64);
  auto* a = arena.alloc<std::uint8_t>(3);
  auto* b = arena.alloc<std::uint64_t>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint64_t), 0u);
  a[0] = 1;
  b[0] = 2;
  // A request larger than any existing block gets a dedicated one.
  auto* big = arena.alloc<std::uint64_t>(1 << 16);
  big[0] = 3;
  big[(1 << 16) - 1] = 4;
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 2u);
}

TEST(LinkSet, MatchesNestedListsAndRequiresMutualEnable) {
  const auto net = test::small_internet(150, 3);
  auto lists = rt::full_link_mask(net.graph);
  std::mt19937_64 rng(9);
  // Drop a random half of a few nodes' links.
  for (int k = 0; k < 10; ++k) {
    auto& v = lists[rng() % lists.size()];
    std::shuffle(v.begin(), v.end(), rng);
    v.resize(v.size() / 2);
  }
  const rt::LinkSet set(net.graph, lists);
  for (auto& v : lists) std::sort(v.begin(), v.end());
  for (AsId n = 0; n < net.graph.num_nodes(); ++n) {
    const auto en = set.enabled(n);
    ASSERT_EQ(std::vector<AsId>(en.begin(), en.end()), lists[n]);
    for (const AsId m : net.graph.neighbors(n)) {
      const bool fwd = std::binary_search(lists[n].begin(), lists[n].end(), m);
      const bool rev = std::binary_search(lists[m].begin(), lists[m].end(), n);
      EXPECT_EQ(set.contains(n, m), fwd);
      EXPECT_EQ(set.hop_enabled(n, m), fwd && rev);
      EXPECT_EQ(set.hop_enabled(m, n), fwd && rev) << "symmetry";
    }
  }
  // The identity element enables every hop of the graph.
  const auto all = rt::LinkSet::all(net.graph);
  for (AsId n = 0; n < net.graph.num_nodes(); ++n) {
    for (const AsId m : net.graph.neighbors(n)) {
      EXPECT_TRUE(all.hop_enabled(n, m));
    }
  }
}

/// Randomized SecurityView configurations (frozen, suppression, per-link,
/// both tie-break regimes): the word-packed mask must answer is_secure /
/// applies_secp exactly as the branchy predicate does.
TEST(SecureMask, BuildMatchesViewPredicatesAcrossRandomViews) {
  const auto net = test::small_internet(250, 21);
  const auto& g = net.graph;
  const std::size_t n = g.num_nodes();
  std::mt19937_64 rng(77);
  rt::Arena arena;
  rt::SecureMask mask;
  const auto links = rt::LinkSet::all(g);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> base(n, 0), frozen(n, 0), suppressed(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = rng() % 3 == 0;
      frozen[i] = rng() % 7 == 0;
      suppressed[i] = rng() % 11 == 0;
    }
    rt::SecurityView view;
    view.graph = &g;
    view.base = base.data();
    view.stub_breaks_ties = trial % 2 == 0;
    if (trial % 3 == 0) view.frozen = frozen.data();
    if (trial % 4 == 0) {
      view.suppressed = suppressed.data();
      view.unsuppress = static_cast<AsId>(rng() % n);
    }
    if (trial % 5 == 0) view.enabled_links = &links;
    if (trial % 6 == 0) view.flip_on = static_cast<AsId>(rng() % n);
    if (trial % 7 == 0) view.flip_off = static_cast<AsId>(rng() % n);
    mask.build(view, arena);
    for (AsId x = 0; x < n; ++x) {
      ASSERT_EQ(mask.is_secure(x), view.is_secure(x))
          << "trial " << trial << " node " << x;
      ASSERT_EQ(mask.applies_secp(x), view.applies_secp(x))
          << "trial " << trial << " node " << x;
    }
  }
}

/// assign_flipped (memcpy + O(degree) patch) must equal a full build of the
/// flipped view — for both flip directions, both tie-break regimes, with
/// and without freezes. This is the projection fast path of Eq. 3.
TEST(SecureMask, AssignFlippedMatchesFullBuild) {
  const auto net = test::small_internet(250, 33);
  const auto& g = net.graph;
  const std::size_t n = g.num_nodes();
  std::mt19937_64 rng(13);
  rt::Arena base_arena, flip_arena, ref_arena;
  rt::SecureMask base_mask, flip_mask, ref_mask;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> base(n, 0), frozen(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = rng() % 3 == 0;
      frozen[i] = rng() % 6 == 0;
    }
    rt::SecurityView view;
    view.graph = &g;
    view.base = base.data();
    view.stub_breaks_ties = trial % 2 == 0;
    if (trial % 3 == 0) view.frozen = frozen.data();
    base_mask.build(view, base_arena);

    // Candidates are ISPs, as in the simulator's affected lists.
    AsId cand = kNoAs;
    for (int probe = 0; probe < 1000 && cand == kNoAs; ++probe) {
      const AsId c = static_cast<AsId>(rng() % n);
      if (g.is_isp(c)) cand = c;
    }
    ASSERT_NE(cand, kNoAs);
    const bool on = base[cand] == 0;

    flip_mask.assign_flipped(base_mask, view, cand, on, flip_arena);
    rt::SecurityView flipped = view;
    (on ? flipped.flip_on : flipped.flip_off) = cand;
    ref_mask.build(flipped, ref_arena);
    for (AsId x = 0; x < n; ++x) {
      ASSERT_EQ(flip_mask.is_secure(x), ref_mask.is_secure(x))
          << "trial " << trial << " cand " << cand << " on " << on
          << " node " << x;
      ASSERT_EQ(flip_mask.applies_secp(x), ref_mask.applies_secp(x))
          << "trial " << trial << " cand " << cand << " on " << on
          << " node " << x;
    }
  }
}

/// Checks one assign_flipped patch against a from-scratch build of the
/// flipped view, every node, both bit planes.
void expect_flip_parity(const topo::AsGraph& g, const rt::SecurityView& view,
                        const rt::SecureMask& base_mask, AsId cand, bool on,
                        const char* tag) {
  rt::Arena flip_arena, ref_arena;
  rt::SecureMask flip_mask, ref_mask;
  flip_mask.assign_flipped(base_mask, view, cand, on, flip_arena);
  rt::SecurityView flipped = view;
  (on ? flipped.flip_on : flipped.flip_off) = cand;
  ref_mask.build(flipped, ref_arena);
  for (AsId x = 0; x < g.num_nodes(); ++x) {
    ASSERT_EQ(flip_mask.is_secure(x), ref_mask.is_secure(x))
        << tag << ": cand " << cand << " on " << on << " node " << x;
    ASSERT_EQ(flip_mask.applies_secp(x), ref_mask.applies_secp(x))
        << tag << ": cand " << cand << " on " << on << " node " << x;
  }
}

/// A zero-degree AS (no customers, no providers, no peers) must survive
/// both sides of a flip patch untouched: it is nobody's stub, so neither
/// the simplex-upgrade loop nor the secp patch may reach it.
TEST(SecureMask, AssignFlippedIgnoresZeroDegreeAs) {
  AsGraph g;
  const AsId p = g.add_as(100);
  const AsId s1 = g.add_as(200);
  const AsId s2 = g.add_as(300);
  const AsId z = g.add_as(400);  // isolated
  g.add_customer_provider(p, s1);
  g.add_customer_provider(p, s2);
  g.finalize();
  ASSERT_EQ(g.customers(z).size(), 0u);
  ASSERT_EQ(g.providers(z).size(), 0u);

  for (const bool stub_ties : {false, true}) {
    std::vector<std::uint8_t> base(g.num_nodes(), 0);
    rt::SecurityView view;
    view.graph = &g;
    view.base = base.data();
    view.stub_breaks_ties = stub_ties;
    rt::Arena arena;
    rt::SecureMask base_mask;
    base_mask.build(view, arena);
    expect_flip_parity(g, view, base_mask, p, /*on=*/true, "zero-degree");

    rt::Arena flip_arena;
    rt::SecureMask flip_mask;
    flip_mask.assign_flipped(base_mask, view, p, true, flip_arena);
    EXPECT_TRUE(flip_mask.is_secure(s1));
    EXPECT_FALSE(flip_mask.is_secure(z)) << "simplex upgrade leaked to an AS "
                                            "that is not a customer of cand";
    EXPECT_FALSE(flip_mask.applies_secp(z));
  }
}

/// AS ids crossing the last, partially-used mask word (n % 64 != 0): the
/// highest id both as a simplex-upgraded stub and as the flip candidate
/// itself. Guards the word/bit indexing at the array boundary.
TEST(SecureMask, AssignFlippedHighestIdInLastWord) {
  // 130 nodes: ids 128 and 129 land in word 2, bits 0 and 1. Node 129 is an
  // ISP (it has stub customers) and also a customer of ISP 0, so it can play
  // both roles; node 128 is one of its stubs.
  AsGraph g;
  for (int i = 0; i < 130; ++i) g.add_as(static_cast<std::uint32_t>(1000 + i));
  const AsId top = 0, high_isp = 129, high_stub = 128;
  g.add_customer_provider(top, high_isp);
  g.add_customer_provider(high_isp, high_stub);
  g.add_customer_provider(high_isp, 127);
  for (AsId s = 1; s < 127; ++s) g.add_customer_provider(top, s);
  g.finalize();
  ASSERT_TRUE(g.is_isp(high_isp));
  ASSERT_TRUE(g.is_stub(high_stub));

  for (const bool stub_ties : {false, true}) {
    std::vector<std::uint8_t> base(g.num_nodes(), 0);
    rt::SecurityView view;
    view.graph = &g;
    view.base = base.data();
    view.stub_breaks_ties = stub_ties;
    rt::Arena arena;
    rt::SecureMask base_mask;
    base_mask.build(view, arena);

    // Candidate in the last word; its stubs (127, 128) straddle words 1/2.
    expect_flip_parity(g, view, base_mask, high_isp, true, "last-word cand");
    // Candidate in word 0 whose simplex upgrade reaches the last word.
    expect_flip_parity(g, view, base_mask, top, true, "last-word stub");

    rt::Arena flip_arena;
    rt::SecureMask flip_mask;
    flip_mask.assign_flipped(base_mask, view, high_isp, true, flip_arena);
    EXPECT_TRUE(flip_mask.is_secure(high_isp));
    EXPECT_TRUE(flip_mask.is_secure(high_stub));
    EXPECT_TRUE(flip_mask.applies_secp(high_isp));
    EXPECT_EQ(flip_mask.applies_secp(high_stub), stub_ties);

    // Flip-off parity from a state where the last-word ISP is secure.
    base[high_isp] = 1;
    base[high_stub] = 1;  // simplex-secured alongside its provider
    base_mask.build(view, arena);
    expect_flip_parity(g, view, base_mask, high_isp, false, "last-word off");
  }
}

/// Flip-OFF of a provider whose stubs were simplex-secured with it: signing
/// is sticky (Section 2.3), so only the candidate's own bits may change —
/// every simplex stub keeps both its secure and its tiebreak bit.
TEST(SecureMask, AssignFlippedOffKeepsSimplexStubsSecure) {
  const auto net = test::small_internet(250, 17);
  const auto& g = net.graph;
  const auto state = test::random_state(g, 0.5, 3);

  // A secure ISP with at least one simplex-secured stub customer.
  AsId cand = kNoAs;
  for (AsId x = 0; x < g.num_nodes() && cand == kNoAs; ++x) {
    if (!g.is_isp(x) || state.flags()[x] == 0) continue;
    for (const AsId c : g.customers(x)) {
      if (g.is_stub(c) && state.flags()[c] != 0) {
        cand = x;
        break;
      }
    }
  }
  ASSERT_NE(cand, kNoAs);

  for (const bool stub_ties : {false, true}) {
    rt::SecurityView view;
    view.graph = &g;
    view.base = state.flags().data();
    view.stub_breaks_ties = stub_ties;
    rt::Arena arena;
    rt::SecureMask base_mask;
    base_mask.build(view, arena);
    expect_flip_parity(g, view, base_mask, cand, /*on=*/false, "flip-off");

    rt::Arena flip_arena;
    rt::SecureMask flip_mask;
    flip_mask.assign_flipped(base_mask, view, cand, false, flip_arena);
    EXPECT_FALSE(flip_mask.is_secure(cand));
    EXPECT_FALSE(flip_mask.applies_secp(cand));
    for (const AsId c : g.customers(cand)) {
      if (g.is_stub(c) && state.flags()[c] != 0) {
        EXPECT_TRUE(flip_mask.is_secure(c)) << "stub " << c;
        EXPECT_EQ(flip_mask.applies_secp(c), base_mask.applies_secp(c))
            << "stub " << c;
      }
    }
  }
}

/// Reusing one SecureMask object for many flips (the simulator's per-worker
/// proj_mask) must leave no residue: each patch starts from the base words,
/// so patch #k equals a from-scratch build of flip #k alone — including
/// flipping the SAME candidate on, then off, then a different one.
TEST(SecureMask, AssignFlippedReuseMatchesFromScratchEachTime) {
  const auto net = test::small_internet(250, 29);
  const auto& g = net.graph;
  const auto state = test::random_state(g, 0.3, 6);
  rt::SecurityView view;
  view.graph = &g;
  view.base = state.flags().data();
  view.stub_breaks_ties = true;
  rt::Arena arena, flip_arena;
  rt::SecureMask base_mask, flip_mask;
  base_mask.build(view, arena);

  std::vector<std::pair<AsId, bool>> flips;
  for (AsId x = 0; x < g.num_nodes() && flips.size() < 24; ++x) {
    if (!g.is_isp(x)) continue;
    // On-then-off of the same candidate, interleaved across candidates.
    flips.emplace_back(x, state.flags()[x] == 0);
    flips.emplace_back(x, state.flags()[x] != 0);
  }
  ASSERT_GE(flips.size(), 8u);

  for (const auto& [cand, on] : flips) {
    flip_mask.assign_flipped(base_mask, view, cand, on, flip_arena);
    rt::Arena ref_arena;
    rt::SecureMask ref_mask;
    rt::SecurityView flipped = view;
    (on ? flipped.flip_on : flipped.flip_off) = cand;
    ref_mask.build(flipped, ref_arena);
    for (AsId x = 0; x < g.num_nodes(); ++x) {
      ASSERT_EQ(flip_mask.is_secure(x), ref_mask.is_secure(x))
          << "cand " << cand << " on " << on << " node " << x;
      ASSERT_EQ(flip_mask.applies_secp(x), ref_mask.applies_secp(x))
          << "cand " << cand << " on " << on << " node " << x;
    }
  }
}

TEST(RibStore, ViewsReproduceTheSourceRibsExactly) {
  const auto net = test::small_internet(200, 5);
  const auto& g = net.graph;
  rt::RibComputer rc(g);
  rt::TieBreakPolicy tb;
  rt::RibStore store(g);
  std::vector<rt::DestRib> ribs(g.num_nodes());
  for (AsId d = 0; d < g.num_nodes(); ++d) {
    EXPECT_FALSE(store.ready(d));
    rc.compute(d, ribs[d]);
    rt::sort_tiebreaks(g, tb, ribs[d]);
    store.put(d, ribs[d]);
    EXPECT_TRUE(store.ready(d));
  }
  EXPECT_GT(store.bytes_reserved(), 0u);
  for (AsId d = 0; d < g.num_nodes(); ++d) {
    const rt::RibView v = store.view(d);
    const rt::DestRib& r = ribs[d];
    ASSERT_EQ(v.dest, d);
    ASSERT_TRUE(v.tb_sorted);
    ASSERT_EQ(std::vector<rt::RouteClass>(v.cls.begin(), v.cls.end()), r.cls);
    ASSERT_EQ(std::vector<std::uint16_t>(v.len.begin(), v.len.end()), r.len);
    ASSERT_EQ(std::vector<std::uint32_t>(v.tb_begin.begin(), v.tb_begin.end()),
              r.tb_begin);
    ASSERT_EQ(std::vector<AsId>(v.tb.begin(), v.tb.end()), r.tb);
    ASSERT_EQ(std::vector<AsId>(v.order.begin(), v.order.end()), r.order);
  }
}

/// Store-backed sorted RIB + shared mask (the steady-state engine path) must
/// produce trees identical to the legacy SecurityView path on unsorted RIBs
/// (which re-hashes every candidate): the positional and hashing selection
/// rules are the same argmin.
TEST(RibStore, SortedPositionalPathMatchesHashingPath) {
  const auto net = test::small_internet(200, 5);
  const auto& g = net.graph;
  const auto state = test::random_state(g, 0.35, 4);
  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::TieBreakPolicy tb;
  rt::SecurityView view;
  view.graph = &g;
  view.base = state.flags().data();
  rt::Arena arena;
  rt::SecureMask mask;
  mask.build(view, arena);
  rt::RibStore store(g);
  rt::DestRib rib;
  rt::RoutingTree fast, slow;
  for (AsId d = 0; d < g.num_nodes(); ++d) {
    rc.compute(d, rib);
    {
      rt::DestRib sorted = rib;
      rt::sort_tiebreaks(g, tb, sorted);
      store.put(d, sorted);
    }
    tc.compute(store.view(d), mask, tb, fast);
    tc.compute(rib, view, tb, slow);  // unsorted: hashing selection
    ASSERT_EQ(rt::tree_fingerprint(store.view(d), fast),
              rt::tree_fingerprint(rib, slow))
        << "dest " << d;
    for (const AsId i : rib.order) {
      ASSERT_EQ(fast.next_hop[i], slow.next_hop[i]) << "dest " << d;
      ASSERT_EQ(fast.path_secure[i], slow.path_secure[i]) << "dest " << d;
    }
  }
}

/// The acceptance-criterion probe: once warm, computing more trees (base and
/// flipped masks alike) performs zero upstream allocations, verified via the
/// obs:: arena counters rather than trusted.
TEST(RoutingKernel, SteadyStateTreesAllocateNothing) {
  const auto net = test::small_internet(300, 8);
  const auto& g = net.graph;
  const auto state = test::random_state(g, 0.3, 2);
  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::TieBreakPolicy tb;
  rt::SecurityView view;
  view.graph = &g;
  view.base = state.flags().data();
  rt::Arena arena;
  rt::SecureMask base_mask, flip_mask;
  base_mask.build(view, arena);
  rt::DestRib rib;
  rt::RoutingTree tree;
  rc.compute(0, rib);
  rt::sort_tiebreaks(g, tb, rib);
  const rt::RibView rv(rib);
  AsId isp = kNoAs;
  for (AsId x = 0; x < g.num_nodes() && isp == kNoAs; ++x) {
    if (g.is_isp(x) && state.flags()[x] == 0) isp = x;
  }
  ASSERT_NE(isp, kNoAs);
  // Warm-up: every arena involved reaches its steady shape.
  tc.compute(rv, base_mask, tb, tree);
  flip_mask.assign_flipped(base_mask, view, isp, true, arena);
  tc.compute(rv, flip_mask, tb, tree);

  auto& blocks_ctr = obs::Registry::global().counter("rt.arena.blocks");
  auto& bytes_ctr = obs::Registry::global().counter("rt.arena.bytes");
  const std::uint64_t blocks0 = blocks_ctr.value();
  const std::uint64_t bytes0 = bytes_ctr.value();
  const std::size_t upstream0 = arena.upstream_allocations();
  for (int i = 0; i < 200; ++i) {
    base_mask.build(view, arena);
    tc.compute(rv, base_mask, tb, tree);
    flip_mask.assign_flipped(base_mask, view, isp, i % 2 == 0, arena);
    tc.compute(rv, flip_mask, tb, tree);
  }
  EXPECT_EQ(blocks_ctr.value(), blocks0);
  EXPECT_EQ(bytes_ctr.value(), bytes0);
  EXPECT_EQ(arena.upstream_allocations(), upstream0);
}

/// Full-Internet-scale smoke, tier-1 sized: generate the paper's |V| =
/// 36,964 topology, compute one destination RIB and one routing tree. The
/// point is that the flat layouts make this a seconds-not-minutes
/// operation on one box (the full cascade budget lives in EXPERIMENTS.md).
TEST(RoutingKernel, FullInternetScaleSmoke36K) {
  topo::InternetConfig cfg;
  cfg.total_ases = 36964;
  cfg.seed = 42;
  auto net = topo::generate_internet(cfg);
  topo::apply_traffic_model(net.graph, net.cps, 0.10);
  ASSERT_EQ(net.graph.num_nodes(), 36964u);
  ASSERT_TRUE(net.graph.finalized());

  rt::RibComputer rc(net.graph);
  rt::TreeComputer tc(net.graph);
  rt::TieBreakPolicy tb;
  rt::DestRib rib;
  rc.compute(net.cps.empty() ? 0 : net.cps.front(), rib);
  rt::sort_tiebreaks(net.graph, tb, rib);
  ASSERT_GT(rib.order.size(), 30000u) << "the graph must be well connected";

  std::vector<std::uint8_t> secure(net.graph.num_nodes(), 0);
  for (AsId n = 0; n < net.graph.num_nodes(); n += 3) secure[n] = 1;
  rt::SecurityView view;
  view.graph = &net.graph;
  view.base = secure.data();
  rt::Arena arena;
  rt::SecureMask mask;
  mask.build(view, arena);
  rt::RoutingTree tree;
  tc.compute(rt::RibView(rib), mask, tb, tree);
  double total = 0.0;
  for (const AsId i : rib.order) {
    if (tree.next_hop[i] == topo::kNoAs && i != rib.dest) continue;
    total += net.graph.weight(i);
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace sbgp
