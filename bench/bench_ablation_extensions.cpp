// Ablation of the Section 8 model extensions implemented beyond the paper's
// base model:
//  - randomized per-ISP thresholds (Section 8.2): how sensitive is the
//    cascade to heterogeneity in deployment costs / projection error?
//  - pricing models (Section 8.4): volume-linear vs concave (volume
//    discounts) vs tiered-capacity billing;
//  - AS-graph evolution (Section 8.4): growth with and without a customer
//    preference for secure providers.
#include "bench_common.h"
#include "core/evolution.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1000);
  bench::print_header("Ablation - Section 8 model extensions", opt);

  auto net = bench::make_internet(opt);
  const auto& g = net.graph;
  const auto adopters = bench::case_study_adopters(net);
  const double n_ases = static_cast<double>(g.num_nodes());

  // ---- (1) randomized theta ----------------------------------------------
  std::cout << "(1) per-ISP threshold randomization (mean theta = 5%)\n";
  stats::Table t1({"theta spread", "ASes secure", "ISPs secure", "rounds"});
  for (const double spread : {0.0, 0.25, 0.5, 0.9}) {
    core::SimConfig cfg = bench::case_study_config(opt);
    const auto thetas = core::randomized_thetas(g, 0.05, spread, opt.seed);
    cfg.per_node_theta = &thetas;
    core::DeploymentSimulator sim(g, cfg);
    const auto r = sim.run(core::DeploymentState::initial(g, adopters));
    t1.begin_row();
    t1.add_percent(spread, 0);
    t1.add_percent(static_cast<double>(r.final_state.num_secure()) / n_ases, 1);
    t1.add_percent(static_cast<double>(r.final_state.num_secure_of_class(
                       g, topo::AsClass::Isp)) /
                       static_cast<double>(g.num_isps()),
                   1);
    t1.add(r.rounds_run());
  }
  t1.print(std::cout);
  bench::print_paper_note(
      "Section 8.2: projection inaccuracies can be rolled into theta; the "
      "cascade should be robust to moderate heterogeneity.");

  // ---- (2) pricing models --------------------------------------------------
  std::cout << "\n(2) revenue curves (theta = 5%)\n";
  stats::Table t2({"pricing model", "ASes secure", "ISPs secure", "rounds"});
  for (const core::PricingModel p :
       {core::PricingModel::LinearVolume, core::PricingModel::ConcaveVolume,
        core::PricingModel::TieredCapacity}) {
    core::SimConfig cfg = bench::case_study_config(opt);
    cfg.pricing = p;
    core::DeploymentSimulator sim(g, cfg);
    const auto r = sim.run(core::DeploymentState::initial(g, adopters));
    t2.begin_row();
    t2.add(std::string(core::to_string(p)));
    t2.add_percent(static_cast<double>(r.final_state.num_secure()) / n_ases, 1);
    t2.add_percent(static_cast<double>(r.final_state.num_secure_of_class(
                       g, topo::AsClass::Isp)) /
                       static_cast<double>(g.num_isps()),
                   1);
    t2.add(r.rounds_run());
  }
  t2.print(std::cout);
  bench::print_paper_note(
      "Section 8.4: revenue need not be linear in volume; concave curves "
      "compress relative gains and damp the cascade, tiered billing "
      "quantises it.");

  // ---- (3) graph evolution --------------------------------------------------
  std::cout << "\n(3) AS-graph growth across " << 4 << " epochs ("
            << opt.nodes / 20 << " new stubs/epoch)\n";
  stats::Table t3({"secure-provider bias", "epoch", "graph size", "secure ASes",
                   "new edges to secure", "to insecure"});
  for (const double bias : {1.0, 3.0}) {
    core::EvolutionConfig ecfg;
    ecfg.epochs = 4;
    ecfg.new_stubs_per_epoch = opt.nodes / 20;
    ecfg.secure_provider_bias = bias;
    ecfg.seed = opt.seed;
    ecfg.sim = bench::case_study_config(opt);
    const auto r = core::run_evolution(net, adopters, ecfg);
    for (const auto& e : r.epochs) {
      t3.begin_row();
      t3.add(bias, 1);
      t3.add(e.epoch);
      t3.add(e.graph_size);
      t3.add(e.secure_ases);
      t3.add(e.new_edges_to_secure);
      t3.add(e.new_edges_to_insecure);
    }
  }
  t3.print(std::cout);
  bench::print_paper_note(
      "Section 8.4: if secure ASes sign up new customers preferentially, "
      "growth itself becomes a deployment incentive (more revenue-bearing "
      "edges land on secure ISPs).");
  return 0;
}
