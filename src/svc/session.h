// svc:: — the long-lived what-if service (ROADMAP: "keep the engine warm").
// A Session owns one topology + deployment state + DeploymentSimulator and
// answers JSON requests against it: what-if utility deltas for a single AS
// (O(1) lookups into the cached StateEvaluation), top-k next adopters, live
// topology mutation (routed through DeploymentSimulator::apply_topology_delta
// so only the destinations a patch can affect are re-evaluated), deployment
// state mutation, and metrics snapshots. The transport (svc::Server) deals
// only in request/response lines; everything protocol-shaped lives here so
// tests can drive a Session without a socket.
//
// Request protocol (one JSON object per line; all AS references are external
// AS numbers, never dense ids):
//   {"op":"whatif_adopt","asn":N}    {"op":"whatif_abandon","asn":N}
//   {"op":"topk_next_adopters","k":K}
//   {"op":"adopt","asn":N}           {"op":"abandon","asn":N}
//   {"op":"mutate_topology","ops":[
//       {"action":"add_edge","type":"cp","provider":N,"customer":N},
//       {"action":"add_edge","type":"peer","a":N,"b":N},
//       {"action":"remove_edge","a":N,"b":N},
//       {"action":"set_relationship","a":N,"b":N,"rel":"customer|peer|provider"},
//       {"action":"add_stub","asn":N,"providers":[N,...]}]}
//   {"op":"query_state"}   {"op":"metrics"}   {"op":"shutdown"}
// Every reply carries "ok"; user errors come back as
// {"ok":false,"op":...,"error":"..."} and never tear the session down. The
// one deliberate exception: core::IncrementalDivergence (check_topo_delta
// lockstep mismatch) propagates out of handle() — an engine bug must stop
// the service, not degrade into an error reply (the CLI maps it to exit 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/deployment_state.h"
#include "core/simulator.h"
#include "exp/json.h"
#include "exp/telemetry.h"
#include "topology/as_graph.h"

namespace sbgp::svc {

struct SessionConfig {
  core::SimConfig sim;
  /// --check-topo-delta: run every evaluation with the full recompute in
  /// lockstep and compare each cached destination bundle bitwise (fresh
  /// unsorted RIBs are computed from the CURRENT graph, so both missed
  /// invalidations and stale stored RIBs diverge). Mismatch throws
  /// core::IncrementalDivergence out of handle().
  bool check_topo_delta = false;
  /// Touched-rows budget for the CSR patcher (AsGraph::apply_op); 0 = auto.
  std::size_t topo_row_budget = 0;
  /// Optional per-request telemetry sink ({"type":"svc_request",...}).
  exp::TelemetryLog* telemetry = nullptr;
};

class Session {
 public:
  /// Takes ownership of the graph (mutate_topology patches it in place).
  /// `state.flags().size()` must equal `graph->num_nodes()`.
  Session(std::unique_ptr<topo::AsGraph> graph, core::DeploymentState state,
          SessionConfig cfg);

  /// Dispatches one request object and returns the reply object. The first
  /// call (and the first after a mutation) pays a warm incremental
  /// evaluation; pure what-if queries against an unchanged session are O(1)
  /// lookups into the cached StateEvaluation.
  [[nodiscard]] exp::Json handle(const exp::Json& request);

  /// Transport entry point: parse + handle + serialise. Malformed JSON
  /// becomes an {"ok":false} reply; IncrementalDivergence still propagates.
  /// Also records svc.* obs metrics and the optional telemetry line.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Set once a {"op":"shutdown"} request was answered; the server drains
  /// and exits cleanly when it sees this.
  [[nodiscard]] bool shutdown_requested() const { return shutdown_; }

  [[nodiscard]] const topo::AsGraph& graph() const { return *graph_; }
  [[nodiscard]] const core::DeploymentState& state() const { return state_; }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }

  /// Forces the next what-if to re-evaluate (tests use this to compare the
  /// warm path against a cold one).
  void invalidate_eval() { eval_stale_ = true; }

  /// Pays the initial full evaluation now, so the first client request is
  /// served from the warm path (the CLI calls this before accepting).
  void warm() { (void)ensure_eval(); }

 private:
  const core::StateEvaluation& ensure_eval();
  [[nodiscard]] topo::AsId resolve_asn(std::uint64_t asn) const;

  exp::Json handle_whatif(const exp::Json& req, bool adopt);
  exp::Json handle_topk(const exp::Json& req);
  exp::Json handle_set_secure(const exp::Json& req, bool secure);
  exp::Json handle_mutate(const exp::Json& req);
  exp::Json handle_query_state();
  exp::Json handle_metrics();

  std::unique_ptr<topo::AsGraph> graph_;
  core::DeploymentState state_;
  SessionConfig cfg_;
  std::unique_ptr<core::DeploymentSimulator> sim_;
  // Cached evaluation of the current (state, topology); what-if queries are
  // O(1) lookups into it until a mutation marks it stale.
  const core::StateEvaluation* eval_cache_ = nullptr;
  bool eval_stale_ = true;
  bool shutdown_ = false;
  std::uint64_t requests_ = 0;
};

}  // namespace sbgp::svc
