# Empty dependencies file for sbgp_topology.
# This may be replaced when dependencies are built.
