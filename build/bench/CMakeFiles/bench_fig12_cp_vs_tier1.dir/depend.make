# Empty dependencies file for bench_fig12_cp_vs_tier1.
# This may be replaced when dependencies are built.
