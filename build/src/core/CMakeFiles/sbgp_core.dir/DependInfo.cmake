
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/sbgp_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/sbgp_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/deployment_state.cpp" "src/core/CMakeFiles/sbgp_core.dir/deployment_state.cpp.o" "gcc" "src/core/CMakeFiles/sbgp_core.dir/deployment_state.cpp.o.d"
  "/root/repo/src/core/early_adopters.cpp" "src/core/CMakeFiles/sbgp_core.dir/early_adopters.cpp.o" "gcc" "src/core/CMakeFiles/sbgp_core.dir/early_adopters.cpp.o.d"
  "/root/repo/src/core/evolution.cpp" "src/core/CMakeFiles/sbgp_core.dir/evolution.cpp.o" "gcc" "src/core/CMakeFiles/sbgp_core.dir/evolution.cpp.o.d"
  "/root/repo/src/core/resilience.cpp" "src/core/CMakeFiles/sbgp_core.dir/resilience.cpp.o" "gcc" "src/core/CMakeFiles/sbgp_core.dir/resilience.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/sbgp_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/sbgp_core.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/sbgp_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/sbgp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/sbgp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sbgp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
