file(REMOVE_RECURSE
  "libsbgp_gadgets.a"
)
