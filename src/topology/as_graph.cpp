#include "topology/as_graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sbgp::topo {

const char* to_string(AsClass c) {
  switch (c) {
    case AsClass::Stub: return "stub";
    case AsClass::Isp: return "isp";
    case AsClass::ContentProvider: return "cp";
  }
  return "?";
}

const char* to_string(Link l) {
  switch (l) {
    case Link::Customer: return "customer";
    case Link::Peer: return "peer";
    case Link::Provider: return "provider";
  }
  return "?";
}

AsId AsGraph::add_as(std::uint32_t asn) {
  if (finalized_) throw std::logic_error("AsGraph: add_as after finalize");
  const AsId id = static_cast<AsId>(asn_.size());
  asn_.push_back(asn);
  customers_.emplace_back();
  peers_.emplace_back();
  providers_.emplace_back();
  weight_.push_back(1.0);
  cp_mark_.push_back(false);
  return id;
}

AsId AsGraph::add_many(std::uint32_t count) {
  // Synthetic AS numbers continue from the current max label.
  std::uint32_t next = 1;
  for (std::uint32_t a : asn_) next = std::max(next, a + 1);
  AsId first = kNoAs;
  for (std::uint32_t i = 0; i < count; ++i) {
    const AsId id = add_as(next++);
    if (first == kNoAs) first = id;
  }
  return first;
}

bool AsGraph::add_edge_checked(AsId a, AsId b) {
  if (finalized_) throw std::logic_error("AsGraph: edge insertion after finalize");
  if (a == b || a >= asn_.size() || b >= asn_.size()) return false;
  Link unused;
  if (link_between(a, b, unused)) return false;  // duplicate edge
  return true;
}

bool AsGraph::add_customer_provider(AsId provider, AsId customer) {
  if (!add_edge_checked(provider, customer)) return false;
  customers_[provider].push_back(customer);
  providers_[customer].push_back(provider);
  ++cp_edges_;
  return true;
}

bool AsGraph::add_peer(AsId a, AsId b) {
  if (!add_edge_checked(a, b)) return false;
  peers_[a].push_back(b);
  peers_[b].push_back(a);
  ++peer_edges_;
  return true;
}

void AsGraph::mark_content_provider(AsId as_id) {
  assert(as_id < asn_.size());
  cp_mark_[as_id] = true;
}

void AsGraph::finalize() {
  if (finalized_) throw std::logic_error("AsGraph: finalize called twice");
  class_.resize(asn_.size());
  n_stubs_ = n_isps_ = n_cps_ = 0;
  for (AsId n = 0; n < asn_.size(); ++n) {
    if (cp_mark_[n]) {
      class_[n] = AsClass::ContentProvider;
      ++n_cps_;
    } else if (customers_[n].empty()) {
      class_[n] = AsClass::Stub;
      ++n_stubs_;
    } else {
      class_[n] = AsClass::Isp;
      ++n_isps_;
    }
  }
  asn_index_.reserve(asn_.size());
  for (AsId n = 0; n < asn_.size(); ++n) asn_index_.emplace_back(asn_[n], n);
  std::sort(asn_index_.begin(), asn_index_.end());
  // Deterministic adjacency order (insertion order may depend on generator
  // internals); sorted neighbours make runs reproducible across platforms.
  for (AsId n = 0; n < asn_.size(); ++n) {
    std::sort(customers_[n].begin(), customers_[n].end());
    std::sort(peers_[n].begin(), peers_[n].end());
    std::sort(providers_[n].begin(), providers_[n].end());
  }
  finalized_ = true;
}

AsId AsGraph::find_asn(std::uint32_t asn) const {
  auto it = std::lower_bound(asn_index_.begin(), asn_index_.end(),
                             std::make_pair(asn, AsId{0}));
  if (it != asn_index_.end() && it->first == asn) return it->second;
  return kNoAs;
}

bool AsGraph::link_between(AsId a, AsId b, Link& out) const {
  auto contains = [](const std::vector<AsId>& v, AsId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  if (contains(customers_[a], b)) { out = Link::Customer; return true; }
  if (contains(peers_[a], b)) { out = Link::Peer; return true; }
  if (contains(providers_[a], b)) { out = Link::Provider; return true; }
  return false;
}

double AsGraph::total_weight() const {
  double sum = 0.0;
  for (double w : weight_) sum += w;
  return sum;
}

std::vector<std::string> AsGraph::validate(bool allow_isolated) const {
  std::vector<std::string> problems;
  if (!finalized_) {
    problems.emplace_back("graph not finalized");
    return problems;
  }
  // GR1: the customer->provider relation must be acyclic. Kahn's algorithm
  // over provider->customer edges.
  std::vector<std::uint32_t> in_deg(num_nodes(), 0);  // number of providers
  for (AsId n = 0; n < num_nodes(); ++n) {
    in_deg[n] = static_cast<std::uint32_t>(providers_[n].size());
  }
  std::vector<AsId> queue;
  for (AsId n = 0; n < num_nodes(); ++n) {
    if (in_deg[n] == 0) queue.push_back(n);
  }
  std::size_t visited = 0;
  while (!queue.empty()) {
    const AsId n = queue.back();
    queue.pop_back();
    ++visited;
    for (AsId c : customers_[n]) {
      if (--in_deg[c] == 0) queue.push_back(c);
    }
  }
  if (visited != num_nodes()) {
    problems.emplace_back("GR1 violated: customer-provider hierarchy has a cycle");
  }
  // Symmetry of adjacency.
  for (AsId n = 0; n < num_nodes(); ++n) {
    for (AsId c : customers_[n]) {
      if (!std::binary_search(providers_[c].begin(), providers_[c].end(), n)) {
        problems.emplace_back("asymmetric customer-provider edge at AS " +
                              std::to_string(asn_[n]));
      }
    }
    for (AsId p : peers_[n]) {
      if (!std::binary_search(peers_[p].begin(), peers_[p].end(), n)) {
        problems.emplace_back("asymmetric peer edge at AS " + std::to_string(asn_[n]));
      }
    }
    if (!allow_isolated && degree(n) == 0) {
      problems.emplace_back("isolated AS " + std::to_string(asn_[n]));
    }
  }
  return problems;
}

std::vector<AsId> AsGraph::tier_ones() const {
  std::vector<AsId> out;
  for (AsId n = 0; n < num_nodes(); ++n) {
    if (providers_[n].empty() && !customers_[n].empty()) out.push_back(n);
  }
  return out;
}

std::size_t AsGraph::customer_cone_size(AsId n) const {
  std::vector<bool> seen(num_nodes(), false);
  std::vector<AsId> stack{n};
  seen[n] = true;
  std::size_t count = 0;
  while (!stack.empty()) {
    const AsId x = stack.back();
    stack.pop_back();
    ++count;
    for (AsId c : customers_[x]) {
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  return count;
}

double apply_traffic_model(AsGraph& graph, std::span<const AsId> cps, double x) {
  if (x < 0.0 || x >= 1.0) throw std::invalid_argument("traffic fraction x must be in [0,1)");
  const auto n = static_cast<double>(graph.num_nodes());
  const auto k = static_cast<double>(cps.size());
  for (AsId i = 0; i < graph.num_nodes(); ++i) graph.set_weight(i, 1.0);
  if (cps.empty() || x == 0.0) return 1.0;
  const double w_cp = x * (n - k) / (k * (1.0 - x));
  for (AsId cp : cps) graph.set_weight(cp, w_cp);
  return w_cp;
}

}  // namespace sbgp::topo
