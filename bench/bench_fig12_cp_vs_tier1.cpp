// Figure 12 / Section 6.8: content providers vs Tier-1s as early adopters:
// (a) sweeping the fraction x of traffic the CPs originate, and
// (b) the base graph vs the Appendix D "augmented" graph in which CPs peer
//     with 80% of IXP members (degree comparable to the largest Tier-1s,
//     path lengths ~2).
#include "bench_common.h"
#include "stats/table.h"

namespace {

double run_fraction(const sbgp::topo::AsGraph& g,
                    const std::vector<sbgp::topo::AsId>& adopters, double theta,
                    std::size_t threads) {
  sbgp::core::SimConfig cfg;
  cfg.model = sbgp::core::UtilityModel::Outgoing;
  cfg.theta = theta;
  cfg.threads = threads;
  sbgp::core::DeploymentSimulator sim(g, cfg);
  const auto result =
      sim.run(sbgp::core::DeploymentState::initial(g, adopters));
  return static_cast<double>(result.final_state.num_secure()) /
         static_cast<double>(g.num_nodes());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbgp;
  const auto opt = bench::parse_options(argc, argv, /*default_nodes=*/1200);
  bench::print_header("Figure 12 - CPs vs Tier-1s as early adopters", opt);

  topo::InternetConfig net_cfg;
  net_cfg.total_ases = opt.nodes;
  net_cfg.seed = opt.seed;
  auto net = topo::generate_internet(net_cfg);
  const auto tier1 =
      core::select_adopters(net, core::AdopterStrategy::TopDegreeIsps, 5, 1);

  // (a) traffic-volume sweep on the base graph.
  std::cout << "(a) fraction of ASes secure, base graph\n";
  stats::Table ta({"x (CP traffic)", "theta", "5 CPs", "top-5 Tier-1s"});
  for (const double x : {0.10, 0.20, 0.33, 0.50}) {
    topo::apply_traffic_model(net.graph, net.cps, x);
    for (const double theta : {0.05, 0.20}) {
      ta.begin_row();
      ta.add_percent(x, 0);
      ta.add(theta, 2);
      ta.add_percent(run_fraction(net.graph, net.cps, theta, opt.threads), 1);
      ta.add_percent(run_fraction(net.graph, tier1, theta, opt.threads), 1);
    }
  }
  ta.print(std::cout);
  bench::print_paper_note(
      "at x=10% the Tier-1s dominate (they transit 2-9x more traffic than "
      "the CPs originate); as x grows to 50% the CPs catch up at low theta; "
      "Tier-1s always win at high theta (they simplex-upgrade many stubs).");

  // (b) base vs augmented graph.
  std::cout << "\n(b) fraction of ASes secure, base vs augmented graph (x=10%)\n";
  std::size_t added = 0;
  auto aug = topo::augment_cp_peering(net, 0.8, opt.seed + 1, &added);
  topo::apply_traffic_model(net.graph, net.cps, 0.10);
  topo::apply_traffic_model(aug.graph, aug.cps, 0.10);
  std::cout << "augmentation added " << added << " CP peering edges\n";
  stats::Table tb({"theta", "CPs (base)", "CPs (augmented)", "Tier-1s (base)",
                   "Tier-1s (augmented)"});
  for (const double theta : {0.05, 0.20}) {
    tb.begin_row();
    tb.add(theta, 2);
    tb.add_percent(run_fraction(net.graph, net.cps, theta, opt.threads), 1);
    tb.add_percent(run_fraction(aug.graph, aug.cps, theta, opt.threads), 1);
    tb.add_percent(run_fraction(net.graph, tier1, theta, opt.threads), 1);
    tb.add_percent(run_fraction(aug.graph, tier1, theta, opt.threads), 1);
  }
  tb.print(std::cout);
  bench::print_paper_note(
      "better CP connectivity (augmented graph) increases CP influence for "
      "low theta, but Tier-1s still outperform when theta >= 0.3 thanks to "
      "their many simplex-upgraded stub customers.");
  return 0;
}
