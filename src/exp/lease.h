// Shard leases for the multi-process sweep fleet: one file per claimed
// shard in a shared `leases/` directory. The file's *existence* is the
// mutual-exclusion primitive — a worker claims a shard by publishing a
// fully-written, fsync'd lease file via link(2), which fails with EEXIST
// for every contender but one (the crash-safe analogue of O_EXCL that
// never exposes a half-written lease). Liveness is a heartbeat timestamp
// *inside* the file, refreshed by atomic rename: a coordinator deems a
// lease dead when its embedded timestamp falls more than a TTL behind the
// coordinator's clock and reaps it, returning the shard to the claimable
// pool.
//
// Every time comparison goes through an injectable NowFn, never through
// file mtimes or direct clock reads: tests drive the whole
// claim → heartbeat → expire → reap → re-claim state machine with a fake
// clock and zero sleeps, and production simply injects the system clock.
// (Heartbeats do bump the file mtime as a side effect, which is handy for
// eyeballing a run directory, but nothing *decides* based on mtime.)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/json.h"

namespace sbgp::exp {

/// Injectable clock: seconds on a shared epoch (workers write heartbeat
/// timestamps that a possibly-different process compares against its own
/// now). Production uses the system clock; tests use a fake.
using NowFn = std::function<double()>;

/// The system clock in seconds — the default NowFn.
[[nodiscard]] double system_now_s();

/// Decoded lease file contents.
struct LeaseInfo {
  std::string shard;   ///< shard id this lease covers
  std::string worker;  ///< claiming worker's id
  double claimed_s = 0.0;
  double beat_s = 0.0;        ///< last heartbeat timestamp
  std::uint64_t beats = 0;    ///< heartbeats written (monotone per lease)

  /// True when the last heartbeat is more than `ttl_s` behind `now_s` —
  /// the holder is presumed dead. Pure; no clock access.
  [[nodiscard]] bool expired(double now_s, double ttl_s) const {
    return now_s - beat_s > ttl_s;
  }

  [[nodiscard]] Json to_json() const;
  static LeaseInfo from_json(const Json& j);
};

/// Lease-file operations over one directory. Instances are cheap; every
/// worker and the coordinator hold their own (possibly on different hosts
/// against a shared filesystem).
class LeaseDir {
 public:
  /// `now` defaults to the system clock.
  explicit LeaseDir(std::string dir, NowFn now = {});

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] double now_s() const { return now_(); }

  /// Atomically claims `shard_id` for `worker_id`. Exactly one concurrent
  /// caller wins (link(2) EEXCL semantics); the published file is fully
  /// written and fsync'd before it becomes visible. Returns true iff this
  /// caller won.
  bool try_claim(const std::string& shard_id, const std::string& worker_id);

  /// Refreshes the heartbeat timestamp via write-temp + fsync + rename
  /// (atomic replace — readers never see a torn lease). Returns false when
  /// the lease no longer exists (it was reaped from under us: the holder
  /// should abandon the shard).
  bool heartbeat(const std::string& shard_id, const std::string& worker_id);

  /// Removes the lease iff it is still held by `worker_id` (normal
  /// completion path; the done marker must already be published). A missing
  /// or foreign lease is left alone — after a reap the shard may already
  /// belong to someone else, and unlinking their claim would double-issue
  /// the shard.
  void release(const std::string& shard_id, const std::string& worker_id);

  /// Unconditional unlink — coordinator-only cleanup of a lease whose shard
  /// already has a durable done marker (the holder died between publishing
  /// the marker and releasing).
  void force_release(const std::string& shard_id);

  /// Reads and decodes a lease; nullopt when absent or torn mid-publish
  /// (which cannot happen via this class but tolerates external damage).
  [[nodiscard]] std::optional<LeaseInfo> read(const std::string& shard_id) const;

  /// Whether a lease file for `shard_id` currently exists (cheap pre-check
  /// before an O_EXCL attempt; the attempt itself is still the arbiter).
  [[nodiscard]] bool held(const std::string& shard_id) const;

  /// Deletes the lease iff it (still) reads as expired under `ttl_s` at
  /// now(). Returns true when a reap happened.
  bool reap_if_expired(const std::string& shard_id, double ttl_s);

  /// Every decodable lease in the directory, sorted by shard id.
  [[nodiscard]] std::vector<LeaseInfo> list() const;

 private:
  [[nodiscard]] std::string lease_path(const std::string& shard_id) const;

  std::string dir_;
  NowFn now_;
};

// ---------------------------------------------------------------------------
// Durable small-file helpers, shared with the fleet layer: every publish is
// write-temp → fsync(file) → link/rename → fsync(directory), so a crash at
// any instant leaves either the old state or the complete new state.

/// Writes `content` to `path` durably (temp file + fsync + rename + dir
/// fsync). Throws std::runtime_error on I/O failure.
void write_file_durable(const std::string& path, const std::string& content);

/// Reads a whole file; nullopt when it does not exist.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

}  // namespace sbgp::exp
