# Empty dependencies file for bench_fig8_theta_sweep.
# This may be replaced when dependencies are built.
