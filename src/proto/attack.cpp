#include "proto/attack.h"

#include <algorithm>

#include "topology/as_graph.h"

namespace sbgp::proto {

namespace {

[[nodiscard]] bool path_contains(const std::vector<std::uint32_t>& path,
                                 std::uint32_t asn) {
  return std::find(path.begin(), path.end(), asn) != path.end();
}

}  // namespace

PartialPreferenceResult run_partial_preference_attack() {
  // Figure 15. ASNs: p=1, q=2, r=3, s=4, v=5, m=6.
  topo::AsGraph g;
  const topo::AsId p = g.add_as(1);
  const topo::AsId q = g.add_as(2);
  const topo::AsId r = g.add_as(3);
  const topo::AsId s = g.add_as(4);
  const topo::AsId v = g.add_as(5);
  const topo::AsId m = g.add_as(6);
  g.add_customer_provider(p, q);  // p provides q
  g.add_customer_provider(p, r);
  g.add_customer_provider(q, m);
  g.add_customer_provider(r, s);
  g.add_customer_provider(s, v);
  g.finalize();

  std::vector<NodeSecurity> security(g.num_nodes(), NodeSecurity::Insecure);
  security[p] = NodeSecurity::Full;
  security[q] = NodeSecurity::Full;

  // "p's tiebreak algorithm prefers paths through r over paths through q".
  std::vector<std::uint64_t> rank(g.num_nodes());
  for (topo::AsId i = 0; i < g.num_nodes(); ++i) rank[i] = g.asn(i);
  rank[q] = 1000;

  PartialPreferenceResult out;
  for (const PartialPathPolicy policy :
       {PartialPathPolicy::IgnorePartial, PartialPathPolicy::PreferPartial}) {
    EngineConfig cfg;
    cfg.mode = SecurityMode::SBgp;
    cfg.partial = policy;
    cfg.tiebreak.mode = rt::TieBreakPolicy::Mode::Rank;
    cfg.tiebreak.rank = &rank;
    BgpEngine engine(g, security, cfg);
    engine.run(v);
    engine.inject(m, {g.asn(m), g.asn(v)}, v);
    const auto& route = engine.route(p);
    if (policy == PartialPathPolicy::IgnorePartial) {
      out.path_ignore_partial = route.path;
      out.attack_succeeds_with_ignore = path_contains(route.path, g.asn(m));
    } else {
      out.path_prefer_partial = route.path;
      out.attack_succeeds_with_partial = path_contains(route.path, g.asn(m));
    }
  }
  return out;
}

HijackResult run_origin_hijack(std::size_t victim_distance,
                               std::size_t attacker_distance) {
  victim_distance = std::max<std::size_t>(1, victim_distance);
  attacker_distance = std::max<std::size_t>(1, attacker_distance);

  // Probe x at the top; two customer chains hang off it: one ends at the
  // victim v (true origin), the other at the attacker m.
  topo::AsGraph g;
  const topo::AsId x = g.add_as(1);
  std::vector<topo::AsId> chain_v{x}, chain_m{x};
  for (std::size_t i = 0; i < victim_distance; ++i) {
    const topo::AsId node = g.add_as(static_cast<std::uint32_t>(100 + i));
    g.add_customer_provider(chain_v.back(), node);
    chain_v.push_back(node);
  }
  for (std::size_t i = 0; i < attacker_distance; ++i) {
    const topo::AsId node = g.add_as(static_cast<std::uint32_t>(200 + i));
    g.add_customer_provider(chain_m.back(), node);
    chain_m.push_back(node);
  }
  g.finalize();
  const topo::AsId v = chain_v.back();
  const topo::AsId m = chain_m.back();

  // Adversarial tie-break: ties at the probe favour the attacker's side.
  std::vector<std::uint64_t> rank(g.num_nodes());
  for (topo::AsId i = 0; i < g.num_nodes(); ++i) rank[i] = g.asn(i) + 1000;
  rank[chain_m[1]] = 1;

  HijackResult out;
  out.true_path_len = victim_distance;
  out.false_path_len = attacker_distance;

  for (const SecurityMode mode : {SecurityMode::BgpOnly, SecurityMode::SBgp}) {
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.tiebreak.mode = rt::TieBreakPolicy::Mode::Rank;
    cfg.tiebreak.rank = &rank;
    std::vector<NodeSecurity> security(
        g.num_nodes(),
        mode == SecurityMode::BgpOnly ? NodeSecurity::Insecure : NodeSecurity::Full);
    BgpEngine engine(g, security, cfg);
    engine.run(v);
    // The attacker claims to *originate* the victim's prefix.
    engine.inject(m, {g.asn(m)}, v);
    const bool fooled = path_contains(engine.route(x).path, g.asn(m));
    if (mode == SecurityMode::BgpOnly) out.probe_fooled_bgp = fooled;
    else out.probe_fooled_sbgp = fooled;
  }
  return out;
}

}  // namespace sbgp::proto
