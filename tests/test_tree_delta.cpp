// PR-9 frontier-delta kernel coverage: rt::TreeDelta must agree with a full
// TreeComputer::compute BIT FOR BIT — next hops, path-security, secure-
// candidate flags, subtree weights (doubles compared by representation, not
// value), Eq. 1/2 contributions, and the hsc-gained footprint slice — across
// graph seeds, adoption densities, stub-tiebreak regimes, both tiebreak
// modes, and flips in both directions. Plus the contractual edge cases: the
// touched-nodes fallback (and recovery after it), refusal of unsorted RIBs,
// and the steady-state zero-allocation arena property.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "routing/arena.h"
#include "routing/rib.h"
#include "routing/routing_tree.h"
#include "routing/secure_state.h"
#include "routing/tree_delta.h"
#include "test_util.h"
#include "topology/as_graph.h"

namespace sbgp {
namespace {

using topo::AsGraph;
using topo::AsId;
using topo::kNoAs;

/// Bit-level double equality: the engine's differential checker fingerprints
/// raw representations, so the tests must too (+0.0 != -0.0 here).
bool same_bits(double a, double b) {
  std::uint64_t x = 0, y = 0;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

/// Runs every eligible flip of `cand_limit` ISP candidates against every
/// destination of the given (graph, state, policy) combination and checks
/// the overlay against a from-scratch flipped tree.
void run_matrix(const AsGraph& g, const std::vector<std::uint8_t>& base,
                bool stub_ties, rt::TieBreakPolicy::Mode mode,
                const char* tag) {
  const std::size_t n = g.num_nodes();
  rt::SecurityView view;
  view.graph = &g;
  view.base = base.data();
  view.stub_breaks_ties = stub_ties;
  rt::TieBreakPolicy tb;
  tb.mode = mode;

  rt::Arena arena;
  rt::SecureMask base_mask, flip_mask;
  base_mask.build(view, arena);

  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::DestRib rib;
  rt::RoutingTree tree, ref, mat;
  rt::TreeDelta delta(g);
  delta.set_max_touched_frac(10.0);  // differential run: never bail out

  std::vector<AsId> isps;
  for (AsId x = 0; x < n; ++x) {
    if (g.is_isp(x)) isps.push_back(x);
  }
  ASSERT_FALSE(isps.empty());

  std::size_t applied = 0;
  for (AsId d = 0; d < n; d += 3) {  // every 3rd destination: matrix budget
    rc.compute(d, rib);
    rt::sort_tiebreaks(g, tb, rib);
    const rt::RibView rv(rib);
    tc.compute(rv, base_mask, tb, tree);
    ASSERT_TRUE(delta.bind(rv, tree, base_mask)) << tag << " dest " << d;

    for (std::size_t ci = 0; ci < isps.size(); ci += 7) {
      const AsId cand = isps[ci];
      const bool on = base[cand] == 0;
      flip_mask.assign_flipped(base_mask, view, cand, on, arena);
      ASSERT_TRUE(delta.apply(flip_mask)) << tag << " dest " << d;
      ++applied;
      tc.compute(rv, flip_mask, tb, ref);

      // Overlay reads and a full materialization, both bitwise.
      delta.materialize(mat);
      for (const AsId i : rib.order) {
        ASSERT_EQ(delta.next_hop(i), ref.next_hop[i])
            << tag << " dest " << d << " cand " << cand << " node " << i;
        ASSERT_EQ(delta.path_secure(i), ref.path_secure[i] != 0)
            << tag << " dest " << d << " cand " << cand << " node " << i;
        ASSERT_EQ(delta.has_secure_candidate(i),
                  ref.has_secure_candidate[i] != 0)
            << tag << " dest " << d << " cand " << cand << " node " << i;
        ASSERT_TRUE(same_bits(delta.subtree_weight(i), ref.subtree_weight[i]))
            << tag << " dest " << d << " cand " << cand << " node " << i
            << ": " << delta.subtree_weight(i) << " vs "
            << ref.subtree_weight[i];
        ASSERT_EQ(mat.next_hop[i], ref.next_hop[i]);
        ASSERT_TRUE(same_bits(mat.subtree_weight[i], ref.subtree_weight[i]));
      }

      // Eq. 1/2 contribution of the flipped candidate.
      const auto want = rt::node_contribution(g, rv, ref, cand);
      const auto got = delta.contribution(cand);
      ASSERT_TRUE(same_bits(got.outgoing, want.outgoing))
          << tag << " dest " << d << " cand " << cand;
      ASSERT_TRUE(same_bits(got.incoming, want.incoming))
          << tag << " dest " << d << " cand " << cand;

      // hsc_gained == the footprint slice project_candidate's full path
      // collects, same content, same (rib.order) order.
      std::vector<AsId> want_fp;
      for (const AsId i : rib.order) {
        if (ref.has_secure_candidate[i] != 0 &&
            tree.has_secure_candidate[i] == 0) {
          want_fp.push_back(i);
        }
      }
      const auto fp = delta.hsc_gained();
      ASSERT_EQ(std::vector<AsId>(fp.begin(), fp.end()), want_fp)
          << tag << " dest " << d << " cand " << cand;
    }
  }
  ASSERT_GT(applied, 100u) << tag << ": matrix too small to mean anything";
}

TEST(TreeDelta, DifferentialMatrixPairwiseHash) {
  for (const std::uint64_t seed : {3u, 19u}) {
    const auto net = test::small_internet(220, seed);
    for (const double p : {0.1, 0.45}) {
      const auto state = test::random_state(net.graph, p, seed + 1);
      std::vector<std::uint8_t> flags = state.flags();
      run_matrix(net.graph, flags, /*stub_ties=*/true,
                 rt::TieBreakPolicy::Mode::PairwiseHash, "hash/stub");
      run_matrix(net.graph, flags, /*stub_ties=*/false,
                 rt::TieBreakPolicy::Mode::PairwiseHash, "hash/nostub");
    }
  }
}

TEST(TreeDelta, DifferentialMatrixRankMode) {
  const auto net = test::small_internet(220, 11);
  const auto state = test::random_state(net.graph, 0.3, 5);
  std::vector<std::uint8_t> flags = state.flags();
  run_matrix(net.graph, flags, /*stub_ties=*/true,
             rt::TieBreakPolicy::Mode::Rank, "rank/stub");
  run_matrix(net.graph, flags, /*stub_ties=*/false,
             rt::TieBreakPolicy::Mode::Rank, "rank/nostub");
}

/// All-insecure base with a tier-1 flip-on: the worst case for the frontier
/// (the flip creates secure paths across a whole customer cone).
TEST(TreeDelta, Tier1FlipOnFromColdState) {
  const auto net = test::small_internet(300, 8);
  std::vector<std::uint8_t> flags(net.graph.num_nodes(), 0);
  run_matrix(net.graph, flags, /*stub_ties=*/true,
             rt::TieBreakPolicy::Mode::PairwiseHash, "cold");
}

/// The touched-nodes budget must (a) actually trigger for wide flips and
/// (b) leave the kernel in a sane state: the very next apply on the same
/// binding, with the budget lifted, must again be bit-exact.
TEST(TreeDelta, FallbackTriggersAndRecovers) {
  const auto net = test::small_internet(400, 21);
  const auto& g = net.graph;
  const auto state = test::random_state(g, 0.4, 9);
  rt::SecurityView view;
  view.graph = &g;
  view.base = state.flags().data();
  view.stub_breaks_ties = true;
  rt::TieBreakPolicy tb;
  rt::Arena arena;
  rt::SecureMask base_mask, flip_mask;
  base_mask.build(view, arena);
  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::DestRib rib;
  rt::RoutingTree tree, ref;
  rt::TreeDelta delta(g);

  std::size_t fallbacks = 0, checked = 0;
  for (AsId d = 0; d < g.num_nodes(); d += 11) {
    rc.compute(d, rib);
    rt::sort_tiebreaks(g, tb, rib);
    const rt::RibView rv(rib);
    tc.compute(rv, base_mask, tb, tree);
    ASSERT_TRUE(delta.bind(rv, tree, base_mask));
    for (AsId cand = 0; cand < g.num_nodes(); ++cand) {
      if (!g.is_isp(cand)) continue;
      const bool on = state.flags()[cand] == 0;
      flip_mask.assign_flipped(base_mask, view, cand, on, arena);
      delta.set_max_touched_frac(0.0);  // budget floor: max(64, 0) = 64
      ASSERT_TRUE(delta.bind(rv, tree, base_mask));
      if (!delta.apply(flip_mask)) {
        ++fallbacks;
        // Recovery: lift the budget, re-apply, demand bit-exactness.
        delta.set_max_touched_frac(10.0);
        ASSERT_TRUE(delta.bind(rv, tree, base_mask));
        ASSERT_TRUE(delta.apply(flip_mask));
        tc.compute(rv, flip_mask, tb, ref);
        for (const AsId i : rib.order) {
          ASSERT_EQ(delta.next_hop(i), ref.next_hop[i]);
          ASSERT_TRUE(
              same_bits(delta.subtree_weight(i), ref.subtree_weight[i]));
        }
        ++checked;
        if (checked >= 8) return;  // enough evidence; keep the test fast
      }
    }
  }
  ASSERT_GT(fallbacks, 0u) << "no flip ever exceeded a 64-node budget; the "
                              "fallback path is untested dead code";
}

TEST(TreeDelta, RefusesUnsortedRibs) {
  const auto net = test::small_internet(120, 4);
  const auto& g = net.graph;
  rt::SecurityView view;
  std::vector<std::uint8_t> flags(g.num_nodes(), 0);
  view.graph = &g;
  view.base = flags.data();
  rt::TieBreakPolicy tb;
  rt::Arena arena;
  rt::SecureMask mask;
  mask.build(view, arena);
  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  rt::DestRib rib;
  rc.compute(0, rib);  // NOT sorted: positional selection is undefined here
  rt::RoutingTree tree;
  tc.compute(rib, view, tb, tree);
  rt::TreeDelta delta(g);
  EXPECT_FALSE(delta.bind(rt::RibView(rib), tree, mask));
  EXPECT_FALSE(delta.bound());
}

/// Steady state: rebinding across destinations and applying flips must stop
/// allocating once every internal buffer has reached its high-water shape —
/// asserted through the obs:: arena counters like the rest of the kernel.
TEST(TreeDelta, SteadyStateAppliesAllocateNothing) {
  const auto net = test::small_internet(300, 8);
  const auto& g = net.graph;
  const auto state = test::random_state(g, 0.3, 2);
  rt::SecurityView view;
  view.graph = &g;
  view.base = state.flags().data();
  rt::TieBreakPolicy tb;
  rt::Arena arena;
  rt::SecureMask base_mask, flip_mask;
  base_mask.build(view, arena);
  rt::RibComputer rc(g);
  rt::TreeComputer tc(g);
  std::vector<AsId> isps;
  for (AsId x = 0; x < g.num_nodes(); ++x) {
    if (g.is_isp(x)) isps.push_back(x);
  }
  const AsId dests[2] = {0, 1};
  rt::DestRib ribs[2];
  rt::RoutingTree trees[2];
  for (int k = 0; k < 2; ++k) {
    rc.compute(dests[k], ribs[k]);
    rt::sort_tiebreaks(g, tb, ribs[k]);
    tc.compute(rt::RibView(ribs[k]), base_mask, tb, trees[k]);
  }
  rt::TreeDelta delta(g);
  delta.set_max_touched_frac(10.0);

  const auto cycle = [&] {
    for (int k = 0; k < 2; ++k) {
      ASSERT_TRUE(
          delta.bind(rt::RibView(ribs[k]), trees[k], base_mask));
      for (std::size_t ci = 0; ci < isps.size(); ci += 5) {
        const AsId cand = isps[ci];
        flip_mask.assign_flipped(base_mask, view, cand,
                                 state.flags()[cand] == 0, arena);
        ASSERT_TRUE(delta.apply(flip_mask));
      }
    }
  };
  cycle();  // warm-up: arena + worklists reach their steady shape
  cycle();

  auto& blocks_ctr = obs::Registry::global().counter("rt.arena.blocks");
  auto& bytes_ctr = obs::Registry::global().counter("rt.arena.bytes");
  const std::uint64_t blocks0 = blocks_ctr.value();
  const std::uint64_t bytes0 = bytes_ctr.value();
  for (int rep = 0; rep < 50; ++rep) cycle();
  EXPECT_EQ(blocks_ctr.value(), blocks0);
  EXPECT_EQ(bytes_ctr.value(), bytes0);
}

}  // namespace
}  // namespace sbgp
