# Empty dependencies file for bench_fig13_buyers_remorse.
# This may be replaced when dependencies are built.
